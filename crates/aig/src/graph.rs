//! The structurally-hashed And-Inverter Graph.

use crate::{Lit, NodeId};
use std::collections::HashMap;
use std::fmt;

/// One node of an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// The constant-false node. Always node 0, never created explicitly.
    Const,
    /// Primary input number `index` (position in [`Aig::inputs`]).
    Input {
        /// Position of this input in the input list.
        index: u32,
    },
    /// Two-input AND gate over complemented edges, normalized so that
    /// `a.raw() <= b.raw()`.
    And {
        /// First (smaller raw literal) fanin.
        a: Lit,
        /// Second fanin.
        b: Lit,
    },
}

impl Node {
    /// Whether this node is an AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, Node::And { .. })
    }

    /// Whether this node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// Fanins of an AND node, `None` otherwise.
    #[inline]
    pub fn fanins(&self) -> Option<(Lit, Lit)> {
        match *self {
            Node::And { a, b } => Some((a, b)),
            _ => None,
        }
    }
}

/// A combinational And-Inverter Graph with structural hashing and
/// constant folding on construction.
///
/// Node 0 is the constant-false node; [`Lit::FALSE`]/[`Lit::TRUE`] refer to
/// it. Inputs and AND gates are appended afterwards, so fanins always have
/// smaller indices than the gates that use them (the node array is a
/// topological order).
///
/// # Example
///
/// ```
/// use aig::Aig;
///
/// let mut g = Aig::new();
/// let x = g.add_input();
/// let y = g.add_input();
/// let xor = g.xor(x, y);
/// g.add_output(xor);
///
/// assert_eq!(g.num_inputs(), 2);
/// assert_eq!(g.num_outputs(), 1);
/// assert!(g.num_ands() >= 1);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Creates an empty AIG with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut g = Aig {
            nodes: Vec::with_capacity(n + 1),
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::with_capacity(n),
        };
        g.nodes.push(Node::Const);
        g
    }

    /// Total number of nodes including the constant node.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph contains only the constant node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND gates.
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// The node table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.as_usize()]
    }

    /// Primary input node ids, in insertion order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output literals, in insertion order.
    #[inline]
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Iterates over `(NodeId, &Node)` in topological (index) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// Iterates over the AND nodes only, in topological order.
    pub fn iter_ands(&self) -> impl Iterator<Item = (NodeId, Lit, Lit)> + '_ {
        self.iter().filter_map(|(id, n)| match *n {
            Node::And { a, b } => Some((id, a, b)),
            _ => None,
        })
    }

    /// Appends a new primary input and returns its positive literal.
    pub fn add_input(&mut self) -> Lit {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::Input {
            index: self.inputs.len() as u32,
        });
        self.inputs.push(id);
        id.pos()
    }

    /// Appends `n` primary inputs and returns their positive literals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Marks `lit` as a primary output and returns its output index.
    pub fn add_output(&mut self, lit: Lit) -> usize {
        debug_assert!(lit.node().as_usize() < self.nodes.len());
        self.outputs.push(lit);
        self.outputs.len() - 1
    }

    /// Replaces output `index` with `lit`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        self.outputs[index] = lit;
    }

    /// Creates (or finds) the AND of `a` and `b`.
    ///
    /// Performs constant folding (`x & 0 = 0`, `x & 1 = x`, `x & x = x`,
    /// `x & !x = 0`) and structural hashing: asking for the same pair twice
    /// returns the same literal.
    ///
    /// # Example
    ///
    /// ```
    /// use aig::{Aig, Lit};
    /// let mut g = Aig::new();
    /// let x = g.add_input();
    /// assert_eq!(g.and(x, Lit::FALSE), Lit::FALSE);
    /// assert_eq!(g.and(x, Lit::TRUE), x);
    /// assert_eq!(g.and(x, !x), Lit::FALSE);
    /// let y = g.add_input();
    /// assert_eq!(g.and(x, y), g.and(y, x));
    /// ```
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        // Constant folding.
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE || a == b {
            return b;
        }
        if let Some(&id) = self.strash.get(&(a, b)) {
            return id.pos();
        }
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::And { a, b });
        self.strash.insert((a, b), id);
        id.pos()
    }

    /// Creates the AND of `a` and `b` *without* structural hashing: a
    /// fresh node is always allocated (constant folding still applies —
    /// the folding cases have no node to allocate).
    ///
    /// Existing nodes can still be found by later [`Aig::and`] calls:
    /// the new node is entered into the hash table only if its key is
    /// vacant. Used by the equivalence checker's no-sharing ablation.
    pub fn and_unshared(&mut self, a: Lit, b: Lit) -> Lit {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE || a == b {
            return b;
        }
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::And { a, b });
        self.strash.entry((a, b)).or_insert(id);
        id.pos()
    }

    /// Creates an AND node with *no* folding and *no* hashing: the gate
    /// is preserved exactly as given (fanins are only reordered to keep
    /// the `a.raw() <= b.raw()` invariant). Trivial gates — constant,
    /// repeated, or opposed fanins — are allocated rather than folded
    /// away.
    ///
    /// This exists for diagnostic netlist loading
    /// ([`crate::aiger::read_raw`]): lint passes must see a file's gate
    /// structure as authored, while [`Aig::and`] would silently repair
    /// it. Engine code should never use it.
    pub fn and_raw(&mut self, a: Lit, b: Lit) -> Lit {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::And { a, b });
        self.strash.entry((a, b)).or_insert(id);
        id.pos()
    }

    /// Looks up an existing AND of `a` and `b` without creating one.
    ///
    /// Applies the same normalization and folding rules as [`Aig::and`];
    /// returns `None` only if the gate would have to be created.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE || a == b {
            return Some(b);
        }
        self.strash.get(&(a, b)).map(|&id| id.pos())
    }

    /// OR via De Morgan.
    #[inline]
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR built from two ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        // a ^ b = !(a & b) & !(!a & !b)
        let t0 = self.and(a, b);
        let t1 = self.and(!a, !b);
        self.and(!t0, !t1)
    }

    /// XNOR (equivalence).
    #[inline]
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let hi = self.and(sel, t);
        let lo = self.and(!sel, e);
        self.or(hi, lo)
    }

    /// Implication `a -> b`.
    #[inline]
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Conjunction of all literals in `lits` as a balanced tree.
    ///
    /// Returns [`Lit::TRUE`] for an empty slice.
    pub fn and_all(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::TRUE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.and_all(&lits[..mid]);
                let r = self.and_all(&lits[mid..]);
                self.and(l, r)
            }
        }
    }

    /// Disjunction of all literals in `lits` as a balanced tree.
    ///
    /// Returns [`Lit::FALSE`] for an empty slice.
    pub fn or_all(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::FALSE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.or_all(&lits[..mid]);
                let r = self.or_all(&lits[mid..]);
                self.or(l, r)
            }
        }
    }

    /// XOR of all literals in `lits` as a balanced tree (parity).
    pub fn xor_all(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::FALSE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.xor_all(&lits[..mid]);
                let r = self.xor_all(&lits[mid..]);
                self.xor(l, r)
            }
        }
    }

    /// Checks internal invariants; used by tests and after I/O.
    ///
    /// Verifies that node 0 is the constant, fanins point strictly
    /// backwards, inputs are registered consistently, outputs are in
    /// range, and AND fanins are normalized.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.nodes.first() != Some(&Node::Const) {
            return Err("node 0 is not the constant node".into());
        }
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            match *node {
                Node::Const => return Err(format!("duplicate constant node at {i}")),
                Node::Input { index } => {
                    let id = self.inputs.get(index as usize).copied();
                    if id != Some(NodeId::new(i as u32)) {
                        return Err(format!("input node {i} not registered at index {index}"));
                    }
                }
                Node::And { a, b } => {
                    if a.node().as_usize() >= i || b.node().as_usize() >= i {
                        return Err(format!("node {i} has forward fanin"));
                    }
                    if a.raw() > b.raw() {
                        return Err(format!("node {i} fanins not normalized"));
                    }
                }
            }
        }
        for (i, out) in self.outputs.iter().enumerate() {
            if out.node().as_usize() >= self.nodes.len() {
                return Err(format!("output {i} out of range"));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, ands: {}, outputs: {} }}",
            self.num_inputs(),
            self.num_ands(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Aig::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 1);
        assert_eq!(g.num_ands(), 0);
        assert!(matches!(g.node(NodeId::CONST), Node::Const));
        g.check().unwrap();
    }

    #[test]
    fn folding_rules() {
        let mut g = Aig::new();
        let x = g.add_input();
        assert_eq!(g.and(Lit::FALSE, x), Lit::FALSE);
        assert_eq!(g.and(Lit::TRUE, x), x);
        assert_eq!(g.and(x, x), x);
        assert_eq!(g.and(x, !x), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let n1 = g.and(x, y);
        let n2 = g.and(y, x);
        assert_eq!(n1, n2);
        assert_eq!(g.num_ands(), 1);
        let n3 = g.and(!x, y);
        assert_ne!(n1, n3);
        assert_eq!(g.num_ands(), 2);
    }

    #[test]
    fn find_and_matches_and() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        assert_eq!(g.find_and(x, y), None);
        let n = g.and(x, y);
        assert_eq!(g.find_and(y, x), Some(n));
        assert_eq!(g.find_and(x, Lit::TRUE), Some(x));
        assert_eq!(g.find_and(x, !x), Some(Lit::FALSE));
    }

    #[test]
    fn xor_of_equal_is_false() {
        let mut g = Aig::new();
        let x = g.add_input();
        assert_eq!(g.xor(x, x), Lit::FALSE);
        assert_eq!(g.xor(x, !x), Lit::TRUE);
        assert_eq!(g.xnor(x, x), Lit::TRUE);
    }

    #[test]
    fn mux_folds_on_equal_branches() {
        let mut g = Aig::new();
        let s = g.add_input();
        let x = g.add_input();
        // sel ? x : x  =>  or(and(s,x), and(!s,x)) — not folded to x by pure
        // strashing, but must still be functionally x; just check construction.
        let m = g.mux(s, x, x);
        assert!(g.check().is_ok());
        assert_ne!(m, Lit::FALSE);
        // sel ? T : F == sel
        let m2 = g.mux(s, Lit::TRUE, Lit::FALSE);
        assert_eq!(m2, s);
    }

    #[test]
    fn tree_helpers() {
        let mut g = Aig::new();
        let xs = g.add_inputs(5);
        assert_eq!(g.and_all(&[]), Lit::TRUE);
        assert_eq!(g.or_all(&[]), Lit::FALSE);
        assert_eq!(g.xor_all(&[]), Lit::FALSE);
        assert_eq!(g.and_all(&xs[..1]), xs[0]);
        let a = g.and_all(&xs);
        let o = g.or_all(&xs);
        let x = g.xor_all(&xs);
        assert_ne!(a, o);
        assert_ne!(o, x);
        g.check().unwrap();
    }

    #[test]
    fn outputs_registered() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let n = g.and(x, y);
        let idx = g.add_output(!n);
        assert_eq!(idx, 0);
        assert_eq!(g.outputs(), &[!n]);
        g.set_output(0, n);
        assert_eq!(g.outputs(), &[n]);
        g.check().unwrap();
    }

    #[test]
    fn check_rejects_forward_fanin() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        g.and(x, y);
        // Manually corrupt via transmute-free route: build a bad graph.
        let mut bad = Aig::new();
        bad.nodes.push(Node::And {
            a: NodeId::new(2).pos(),
            b: NodeId::new(3).pos(),
        });
        assert!(bad.check().is_err());
    }
}
