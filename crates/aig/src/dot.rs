//! Graphviz DOT export for AIGs.
//!
//! Complemented edges are drawn dashed with a dot arrowhead — the usual
//! AIG drawing convention — so small graphs can be inspected with
//! `dot -Tpdf`.

use crate::{Aig, Node};
use std::io::{self, Write};

/// Writes `aig` as a Graphviz digraph.
///
/// Inputs are boxes, AND gates circles, outputs inverted houses;
/// complemented edges are dashed.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Example
///
/// ```
/// use aig::{dot, Aig};
///
/// # fn main() -> std::io::Result<()> {
/// let mut g = Aig::new();
/// let x = g.add_input();
/// let y = g.add_input();
/// let n = g.and(x, !y);
/// g.add_output(n);
/// let mut out = Vec::new();
/// dot::write_dot(&g, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("digraph aig {"));
/// assert!(text.contains("style=dashed"));
/// # Ok(())
/// # }
/// ```
pub fn write_dot<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    writeln!(w, "digraph aig {{")?;
    writeln!(w, "  rankdir=BT;")?;
    for (id, node) in aig.iter() {
        match *node {
            Node::Const => {
                writeln!(w, "  n0 [label=\"0\", shape=box, style=filled];")?;
            }
            Node::Input { index } => {
                writeln!(w, "  n{} [label=\"i{index}\", shape=box];", id.index())?;
            }
            Node::And { a, b } => {
                writeln!(w, "  n{} [label=\"∧\", shape=circle];", id.index())?;
                for fanin in [a, b] {
                    let style = if fanin.is_complemented() {
                        " [style=dashed, arrowhead=dot]"
                    } else {
                        ""
                    };
                    writeln!(w, "  n{} -> n{}{style};", fanin.node().index(), id.index())?;
                }
            }
        }
    }
    for (k, out) in aig.outputs().iter().enumerate() {
        writeln!(w, "  o{k} [label=\"o{k}\", shape=invhouse];")?;
        let style = if out.is_complemented() {
            " [style=dashed, arrowhead=dot]"
        } else {
            ""
        };
        writeln!(w, "  n{} -> o{k}{style};", out.node().index())?;
    }
    writeln!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_every_node_and_output() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let n = g.and(x, y);
        g.add_output(!n);
        let mut buf = Vec::new();
        write_dot(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("n1 [label=\"i0\""));
        assert!(text.contains("n2 [label=\"i1\""));
        assert!(text.contains("shape=circle"));
        assert!(text.contains("o0 [label=\"o0\""));
        // Output edge is complemented.
        assert!(text.contains("n3 -> o0 [style=dashed"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn constant_rendered_when_used() {
        let mut g = Aig::new();
        g.add_output(crate::Lit::TRUE);
        let mut buf = Vec::new();
        write_dot(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("n0 [label=\"0\""));
    }
}
