//! AIGER format I/O (ASCII `aag` and binary `aig`, format version 1.9
//! combinational subset: no latches).
//!
//! This lets real benchmark circuits be dropped into the experiment
//! harness alongside the synthetic generators.

use crate::{Aig, Lit};
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Error produced while reading an AIGER file.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the AIGER format; the message says how.
    Format(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error reading aiger: {e}"),
            ParseAigerError::Format(m) => write!(f, "invalid aiger file: {m}"),
        }
    }
}

impl std::error::Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            ParseAigerError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, ParseAigerError> {
    Err(ParseAigerError::Format(msg.into()))
}

/// Largest accepted node count. A header is attacker-controlled input:
/// without a cap, a five-byte file declaring `M = 4294967295` would make
/// the reader pre-allocate tens of gigabytes before noticing the body is
/// missing. 16M nodes comfortably covers real benchmark circuits.
pub const MAX_NODES: u32 = 1 << 24;

/// Writes `aig` in ASCII AIGER (`aag`) format.
///
/// Latch count is always zero (this crate is combinational only).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_ascii<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let m = aig.len() - 1;
    let i = aig.num_inputs();
    let o = aig.num_outputs();
    let a = aig.num_ands();
    writeln!(w, "aag {m} {i} 0 {o} {a}")?;
    for input in aig.inputs() {
        writeln!(w, "{}", input.pos().raw())?;
    }
    for out in aig.outputs() {
        writeln!(w, "{}", out.raw())?;
    }
    for (id, fa, fb) in aig.iter_ands() {
        writeln!(w, "{} {} {}", id.pos().raw(), fa.raw(), fb.raw())?;
    }
    Ok(())
}

/// Writes `aig` in binary AIGER (`aig`) format.
///
/// Binary AIGER requires inputs to occupy node indices `1..=I` and ANDs
/// `I+1..=M`, which this crate's construction discipline may not satisfy
/// (inputs can be interleaved with gates); the writer therefore renumbers
/// nodes internally. Reading the result back yields a functionally
/// identical, possibly renumbered, graph.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_binary<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    // Renumber: inputs first, then ANDs in topological order.
    let mut map = vec![Lit::FALSE; aig.len()];
    let mut next = 1u32;
    for &inp in aig.inputs() {
        map[inp.as_usize()] = Lit::from_raw(next * 2);
        next += 1;
    }
    for (id, ..) in aig.iter_ands() {
        map[id.as_usize()] = Lit::from_raw(next * 2);
        next += 1;
    }
    let tr = |l: Lit| map[l.node().as_usize()].xor_complement(l.is_complemented());

    let m = aig.len() - 1;
    let i = aig.num_inputs();
    let o = aig.num_outputs();
    let a = aig.num_ands();
    writeln!(w, "aig {m} {i} 0 {o} {a}")?;
    for out in aig.outputs() {
        writeln!(w, "{}", tr(*out).raw())?;
    }
    for (id, fa, fb) in aig.iter_ands() {
        let lhs = tr(id.pos()).raw();
        let (r0, r1) = (tr(fa).raw(), tr(fb).raw());
        let (hi, lo) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        debug_assert!(lhs > hi, "binary aiger ordering violated");
        write_delta(&mut w, lhs - hi)?;
        write_delta(&mut w, hi - lo)?;
    }
    Ok(())
}

fn write_delta<W: Write>(w: &mut W, mut delta: u32) -> io::Result<()> {
    loop {
        let byte = (delta & 0x7f) as u8;
        delta >>= 7;
        if delta == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_delta<R: Read>(r: &mut R) -> Result<u32, ParseAigerError> {
    let mut result: u64 = 0;
    let mut shift = 0;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        result |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            if result > u32::MAX as u64 {
                return format_err("delta overflows u32");
            }
            return Ok(result as u32);
        }
        shift += 7;
        if shift > 35 {
            return format_err("delta encoding too long");
        }
    }
}

/// Reads an AIGER file in either ASCII or binary format.
///
/// Only the combinational subset is supported: a nonzero latch count is
/// rejected. Symbol and comment sections are ignored.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed input or I/O failure.
pub fn read<R: BufRead>(r: R) -> Result<Aig, ParseAigerError> {
    read_impl(r, false)
}

/// Reads an AIGER file *preserving its gate structure*: no structural
/// hashing and no constant folding, so duplicate, constant, and
/// repeated-fanin AND gates survive exactly as authored.
///
/// [`read`] silently repairs such gates (they fold away during
/// construction), which is what an engine wants but hides netlist
/// defects from diagnostic passes; `rplint` loads through this entry
/// point instead.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed input or I/O failure.
pub fn read_raw<R: BufRead>(r: R) -> Result<Aig, ParseAigerError> {
    read_impl(r, true)
}

fn read_impl<R: BufRead>(mut r: R, raw: bool) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 {
        return format_err("header must be `aag|aig M I L O A`");
    }
    let binary = match fields[0] {
        "aag" => false,
        "aig" => true,
        other => return format_err(format!("unknown magic `{other}`")),
    };
    let nums: Vec<u32> = fields[1..6]
        .iter()
        .map(|s| s.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| ParseAigerError::Format(format!("bad header number: {e}")))?;
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return format_err("latches are not supported (combinational subset only)");
    }
    // Sum in u64: `i + a` can overflow u32 on a hostile header.
    if u64::from(m) != u64::from(i) + u64::from(a) {
        return format_err(format!(
            "header inconsistent: M={m} != I+A={}",
            u64::from(i) + u64::from(a)
        ));
    }
    if m > MAX_NODES {
        return format_err(format!("M={m} exceeds the supported maximum {MAX_NODES}"));
    }
    if o > MAX_NODES {
        return format_err(format!("O={o} exceeds the supported maximum {MAX_NODES}"));
    }

    if binary {
        read_binary_body(r, i, o, a, raw)
    } else {
        read_ascii_body(r, m, i, o, a, raw)
    }
}

fn read_ascii_body<R: BufRead>(
    mut r: R,
    m: u32,
    i: u32,
    o: u32,
    a: u32,
    raw: bool,
) -> Result<Aig, ParseAigerError> {
    let mut line = String::new();
    let mut next_line = |r: &mut R, what: &str| -> Result<Vec<u32>, ParseAigerError> {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return format_err(format!("unexpected end of file reading {what}"));
        }
        line.split_whitespace()
            .map(|t| {
                t.parse::<u32>()
                    .map_err(|e| ParseAigerError::Format(format!("bad {what} literal: {e}")))
            })
            .collect()
    };

    let mut input_lits = Vec::with_capacity(i as usize);
    for k in 0..i {
        let v = next_line(&mut r, "input")?;
        if v.len() != 1 {
            return format_err(format!("input line {k} must have one literal"));
        }
        if v[0] % 2 != 0 || v[0] == 0 {
            return format_err(format!("input literal {} invalid", v[0]));
        }
        input_lits.push(v[0]);
    }
    let mut output_lits = Vec::with_capacity(o as usize);
    for k in 0..o {
        let v = next_line(&mut r, "output")?;
        if v.len() != 1 {
            return format_err(format!("output line {k} must have one literal"));
        }
        output_lits.push(v[0]);
    }
    let mut and_defs = Vec::with_capacity(a as usize);
    for k in 0..a {
        let v = next_line(&mut r, "and")?;
        if v.len() != 3 {
            return format_err(format!("and line {k} must have three literals"));
        }
        if v[0] % 2 != 0 {
            return format_err(format!("and lhs {} must be even", v[0]));
        }
        and_defs.push((v[0], v[1], v[2]));
    }

    build_graph(m, &input_lits, &output_lits, &and_defs, raw)
}

fn read_binary_body<R: BufRead>(
    mut r: R,
    i: u32,
    o: u32,
    a: u32,
    raw: bool,
) -> Result<Aig, ParseAigerError> {
    // Binary format: inputs are implicitly 2,4,..,2I.
    let input_lits: Vec<u32> = (1..=i).map(|v| v * 2).collect();
    let mut output_lits = Vec::with_capacity(o as usize);
    let mut line = String::new();
    for k in 0..o {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return format_err(format!("unexpected end of file reading output {k}"));
        }
        let lit = line
            .trim()
            .parse::<u32>()
            .map_err(|e| ParseAigerError::Format(format!("bad output literal: {e}")))?;
        output_lits.push(lit);
    }
    let mut and_defs = Vec::with_capacity(a as usize);
    for k in 0..a {
        let lhs = (i + 1 + k) * 2;
        let d0 = read_delta(&mut r)?;
        let d1 = read_delta(&mut r)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseAigerError::Format(format!("and {k}: delta0 too large")))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| ParseAigerError::Format(format!("and {k}: delta1 too large")))?;
        and_defs.push((lhs, rhs0, rhs1));
    }
    build_graph(i + a, &input_lits, &output_lits, &and_defs, raw)
}

fn build_graph(
    m: u32,
    input_lits: &[u32],
    output_lits: &[u32],
    and_defs: &[(u32, u32, u32)],
    raw: bool,
) -> Result<Aig, ParseAigerError> {
    // map[aiger var] = our literal
    let mut map: Vec<Option<Lit>> = vec![None; m as usize + 1];
    map[0] = Some(Lit::FALSE);
    let mut g = Aig::with_capacity(m as usize);
    for &il in input_lits {
        let var = il / 2;
        if var as usize > m as usize {
            return format_err(format!("input variable {var} exceeds maximum {m}"));
        }
        if map[var as usize].is_some() {
            return format_err(format!("variable {var} defined twice"));
        }
        map[var as usize] = Some(g.add_input());
    }
    // AND definitions may appear in any order in ASCII files; process
    // iteratively until a fixpoint (files are usually already sorted, so
    // this is one pass in practice). `retain` cannot return early, so
    // defects are captured and raised after the pass.
    let mut defect: Option<String> = None;
    let mut remaining: Vec<(u32, u32, u32)> = and_defs.to_vec();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&(lhs, r0, r1)| {
            if defect.is_some() {
                return false;
            }
            let var = lhs / 2;
            if var == 0 || var > m {
                defect = Some(format!("and lhs variable {var} outside 1..={m}"));
                return false;
            }
            let l0 = map.get(r0 as usize / 2).copied().flatten();
            let l1 = map.get(r1 as usize / 2).copied().flatten();
            match (l0, l1) {
                (Some(l0), Some(l1)) => {
                    if map[var as usize].is_some() {
                        defect = Some(format!("variable {var} defined twice"));
                        return false;
                    }
                    let la = l0.xor_complement(r0 % 2 == 1);
                    let lb = l1.xor_complement(r1 % 2 == 1);
                    let gate = if raw {
                        g.and_raw(la, lb)
                    } else {
                        g.and(la, lb)
                    };
                    map[var as usize] = Some(gate);
                    false
                }
                _ => true,
            }
        });
        if let Some(msg) = defect {
            return format_err(msg);
        }
        if remaining.len() == before {
            return format_err("cyclic or dangling and definitions");
        }
    }
    let mut out = Aig::new();
    std::mem::swap(&mut out, &mut g);
    for &ol in output_lits {
        let var = (ol / 2) as usize;
        let base =
            map.get(var).copied().flatten().ok_or_else(|| {
                ParseAigerError::Format(format!("output references undefined {var}"))
            })?;
        out.add_output(base.xor_complement(ol % 2 == 1));
    }
    out.check().map_err(ParseAigerError::Format)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustive_diff;

    fn sample() -> Aig {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let z = g.add_input();
        let t = g.xor(x, y);
        let u = g.mux(z, t, x);
        g.add_output(u);
        g.add_output(!t);
        g
    }

    #[test]
    fn ascii_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_ascii(&g, &mut buf).unwrap();
        let g2 = read(&buf[..]).unwrap();
        assert_eq!(g2.num_inputs(), g.num_inputs());
        assert_eq!(g2.num_outputs(), g.num_outputs());
        assert_eq!(exhaustive_diff(&g, &g2, 8), None);
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read(&buf[..]).unwrap();
        assert_eq!(g2.num_inputs(), g.num_inputs());
        assert_eq!(exhaustive_diff(&g, &g2, 8), None);
    }

    #[test]
    fn constant_outputs_round_trip() {
        let mut g = Aig::new();
        let _ = g.add_input();
        g.add_output(Lit::TRUE);
        g.add_output(Lit::FALSE);
        let mut buf = Vec::new();
        write_ascii(&g, &mut buf).unwrap();
        let g2 = read(&buf[..]).unwrap();
        assert_eq!(g2.evaluate(&[false]), vec![true, false]);
        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        let g3 = read(&bin[..]).unwrap();
        assert_eq!(g3.evaluate(&[true]), vec![true, false]);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Format(m)) => assert!(m.contains("latches")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read("xxx 0 0 0 0 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_inconsistent_header() {
        assert!(read("aag 5 2 0 1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_dangling_and() {
        // AND referencing variable 9 which is never defined.
        let text = "aag 3 1 0 1 2\n2\n4\n4 18 2\n6 4 2\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn parses_unsorted_ascii_ands() {
        // Node 6 defined before node 4, which it depends on.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let g = read(text.as_bytes()).unwrap();
        assert_eq!(g.num_ands(), 1);
        assert_eq!(g.evaluate(&[true, true]), vec![true]);
        assert_eq!(g.evaluate(&[true, false]), vec![false]);
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = ParseAigerError::Format("boom".into());
        assert!(format!("{e}").contains("boom"));
    }

    #[test]
    fn rejects_overflowing_header_sum() {
        // I + A overflows u32; the unhardened reader wrapped and could
        // accept M = (I + A) mod 2^32.
        let text = "aag 4294967294 4294967295 0 0 4294967295\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Format(m)) => assert!(m.contains("inconsistent"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_giant_declared_node_count() {
        // A five-byte body cannot justify a 2^31-node graph; without the
        // cap this pre-allocated gigabytes before failing.
        let text = "aag 2147483647 2147483646 0 0 1\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Format(m)) => assert!(m.contains("maximum"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        let bin = "aig 2147483647 2147483646 0 0 1\n";
        assert!(read(bin.as_bytes()).is_err());
    }

    #[test]
    fn rejects_and_lhs_out_of_range() {
        // lhs 18 → variable 9 > M = 3: previously an out-of-bounds
        // index into the variable map (panic).
        let text = "aag 3 2 0 1 1\n2\n4\n6\n18 2 4\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Format(m)) => assert!(m.contains("outside"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_and_definition() {
        // Node 6 defined twice; previously the second definition
        // silently overwrote the first.
        let text = "aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 3 5\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Format(m)) => assert!(m.contains("twice"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_and_redefining_an_input() {
        // Node 1 is declared an input, then redefined as a gate.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n2 4 6\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_binary_delta() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in 1..buf.len() {
            assert!(read(&buf[..cut]).is_err(), "prefix {cut} accepted");
        }
    }
}
