//! Cross-artifact bundle lints (`XB` codes).
//!
//! A proof-carrying CEC run produces a *chain* of artifacts: the miter
//! AIG, its Tseitin CNF, the resolution proof over that CNF, and the
//! certificate metadata describing the proof. Each per-artifact lint
//! pass can be clean while the chain is broken — the CNF encodes a
//! *different* circuit, the proof's input clauses come from a *different*
//! formula, or the certificate points at the wrong step. [`lint_bundle`]
//! closes that trust gap statically:
//!
//! - **AIG ↔ CNF** (`XB001`–`XB004`): the expected Tseitin definition
//!   clauses are reconstructed per AND gate via [`cnf::tseitin`] under
//!   the identity node-to-variable map (variable *i* is AIG node *i*,
//!   exactly the convention of `cnf::tseitin::encode` and the sweeping
//!   engine) and diffed against the actual CNF. Unit clauses beyond the
//!   constant pin are accepted as assertions/assumptions — asserting the
//!   miter output is the whole point of the encoding.
//! - **CNF ↔ proof** (`XB005`–`XB006`): every input step's clause must
//!   literally occur in the CNF. Lookups are hash-indexed over
//!   normalized clauses; a clause whose *variables* match a CNF clause
//!   but whose signs differ is reported as a near miss (literal order is
//!   normalized away, so permutation errors cannot arise).
//! - **certificate ↔ proof** (`XB007`–`XB009`): the recorded
//!   empty-clause id, stitch boundaries, and step counts must agree with
//!   what the proof actually contains.

use crate::{
    clause_dimacs, clause_vars, normalize_clause, Artifact, LintOptions, Location, Report, XB001,
    XB002, XB003, XB004, XB005, XB006, XB007, XB008, XB009,
};
use aig::Aig;
use cnf::tseitin::and_clauses;
use cnf::{Cnf, Lit, Var};
use proof::Proof;
use std::collections::HashMap;
use std::io::{self, Write};

/// Certificate metadata in artifact-neutral form, as consumed by
/// [`lint_bundle`]'s `XB007`–`XB009` checks.
///
/// The engine's `Certificate` type lives above this crate in the
/// dependency graph, so it mirrors itself into this struct (and into the
/// `.cert` key–value text format via [`CertificateInfo::write`] /
/// [`CertificateInfo::parse`]) for static auditing. Every field is
/// optional: absent fields are simply not checked.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CertificateInfo {
    /// Step id of the empty clause inside the proof.
    pub empty_clause: Option<u32>,
    /// Parallel sweep rounds (zero for a sequential run).
    pub rounds: Option<u64>,
    /// Proof lengths recorded around the parallel sweep: the length when
    /// stitching began, then after each round's merge — so a run with
    /// `rounds = r > 0` records exactly `r + 1` boundaries.
    pub stitch_boundaries: Vec<u32>,
    /// Number of input (original) steps in the proof.
    pub original: Option<usize>,
    /// Number of derived steps in the proof.
    pub derived: Option<usize>,
    /// Total resolutions (antecedent count minus one, summed).
    pub resolutions: Option<u64>,
}

impl CertificateInfo {
    /// Writes the `.cert` text form: one `key value...` line per present
    /// field, with a leading comment identifying the format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "c resolution-cec certificate v1")?;
        if let Some(e) = self.empty_clause {
            writeln!(w, "empty-clause {e}")?;
        }
        if let Some(r) = self.rounds {
            writeln!(w, "rounds {r}")?;
        }
        if !self.stitch_boundaries.is_empty() {
            write!(w, "boundaries")?;
            for b in &self.stitch_boundaries {
                write!(w, " {b}")?;
            }
            writeln!(w)?;
        }
        if let Some(n) = self.original {
            writeln!(w, "original {n}")?;
        }
        if let Some(n) = self.derived {
            writeln!(w, "derived {n}")?;
        }
        if let Some(n) = self.resolutions {
            writeln!(w, "resolutions {n}")?;
        }
        Ok(())
    }

    /// Parses the `.cert` text form written by [`CertificateInfo::write`].
    /// Comment lines (`c ...`) and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on unknown keys or
    /// malformed values.
    pub fn parse(text: &str) -> Result<CertificateInfo, String> {
        let mut info = CertificateInfo::default();
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let key = tokens.next().expect("non-empty line has a token");
            let mut one = |what: &str| -> Result<u64, String> {
                let tok = tokens
                    .next()
                    .ok_or_else(|| format!("line {}: `{key}` needs a value", line_no + 1))?;
                tok.parse()
                    .map_err(|e| format!("line {}: bad {what} `{tok}`: {e}", line_no + 1))
            };
            match key {
                "empty-clause" => info.empty_clause = Some(one("step id")? as u32),
                "rounds" => info.rounds = Some(one("round count")?),
                "original" => info.original = Some(one("step count")? as usize),
                "derived" => info.derived = Some(one("step count")? as usize),
                "resolutions" => info.resolutions = Some(one("resolution count")?),
                "boundaries" => {
                    for tok in tokens.by_ref() {
                        let b: u32 = tok.parse().map_err(|e| {
                            format!("line {}: bad boundary `{tok}`: {e}", line_no + 1)
                        })?;
                        info.stitch_boundaries.push(b);
                    }
                }
                other => return Err(format!("line {}: unknown key `{other}`", line_no + 1)),
            }
            if key != "boundaries" && tokens.next().is_some() {
                return Err(format!(
                    "line {}: trailing tokens after `{key}`",
                    line_no + 1
                ));
            }
        }
        Ok(info)
    }
}

/// The artifacts of one certification bundle. Any subset may be present;
/// each pairwise check runs only when both of its artifacts are.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bundle<'a> {
    /// The (miter) circuit the CNF is supposed to encode.
    pub aig: Option<&'a Aig>,
    /// The Tseitin CNF the proof is supposed to refute.
    pub cnf: Option<&'a Cnf>,
    /// The recorded resolution proof.
    pub proof: Option<&'a Proof>,
    /// The certificate metadata describing the proof.
    pub certificate: Option<&'a CertificateInfo>,
}

/// Statically checks that the bundle's artifacts bind to each other.
/// All `XB` checks are structural (hash-indexed set comparisons), so the
/// pass runs regardless of [`LintOptions::chain`].
pub fn lint_bundle(bundle: &Bundle<'_>, opts: &LintOptions) -> Report {
    let mut report = Report::new(Artifact::Bundle);
    let cap = opts.max_per_lint;
    if let (Some(g), Some(f)) = (bundle.aig, bundle.cnf) {
        lint_aig_cnf(g, f, &mut report, cap);
    }
    if let (Some(f), Some(p)) = (bundle.cnf, bundle.proof) {
        lint_cnf_proof(f, p, &mut report, cap);
    }
    if let (Some(c), Some(p)) = (bundle.certificate, bundle.proof) {
        lint_cert_proof(c, p, &mut report, cap);
    }
    report
}

/// One reconstructed Tseitin definition clause awaiting its CNF match.
struct ExpectedClause {
    lits: Vec<Lit>,
    node: u32,
    which: usize,
}

/// Consumes (marks matched) the first unmatched expected clause among
/// `idxs`, returning its index.
fn take(idxs: Option<&Vec<usize>>, matched: &mut [bool]) -> Option<usize> {
    let i = *idxs?.iter().find(|&&i| !matched[i])?;
    matched[i] = true;
    Some(i)
}

/// AIG ↔ CNF: diff the actual CNF against the Tseitin reconstruction.
fn lint_aig_cnf(g: &Aig, f: &Cnf, report: &mut Report, cap: usize) {
    if (f.num_vars() as usize) < g.len() {
        report.emit(XB001, None, cap, || {
            format!(
                "the CNF declares {} variables but the AIG has {} nodes \
                 (node i must map to variable i)",
                f.num_vars(),
                g.len()
            )
        });
    }

    // Reconstruct the expected definition clauses: the constant pin plus
    // three clauses per AND gate, all normalized.
    let mut expected: Vec<ExpectedClause> = Vec::with_capacity(1 + 3 * g.num_ands());
    expected.push(ExpectedClause {
        lits: vec![Var::new(0).negative()],
        node: 0,
        which: 0,
    });
    for (id, fa, fb) in g.iter_ands() {
        let x = Var::new(id.index()).positive();
        let a = aig_lit(fa);
        let b = aig_lit(fb);
        for (which, clause) in and_clauses(x, a, b).into_iter().enumerate() {
            expected.push(ExpectedClause {
                lits: normalize_clause(clause),
                node: id.index(),
                which,
            });
        }
    }
    let mut by_lits: HashMap<&[Lit], Vec<usize>> = HashMap::new();
    let mut by_vars: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, e) in expected.iter().enumerate() {
        by_lits.entry(&e.lits).or_default().push(i);
        by_vars.entry(clause_vars(&e.lits)).or_default().push(i);
    }

    // Match every actual clause against the reconstruction.
    let mut matched = vec![false; expected.len()];
    let mut near: Vec<(usize, usize)> = Vec::new(); // (clause index, expected index)
    let mut unexplained: Vec<usize> = Vec::new();
    for (ci, clause) in f.clauses().iter().enumerate() {
        let norm = normalize_clause(clause.clone());
        if take(by_lits.get(norm.as_slice()), &mut matched).is_some() {
            continue;
        }
        if norm.len() == 1 {
            // A unit beyond the constant pin is an assertion or an
            // assumption-strength clause; the output unit of a miter
            // encoding lands here.
            continue;
        }
        match take(by_vars.get(&clause_vars(&norm)), &mut matched) {
            Some(i) => near.push((ci, i)),
            None => unexplained.push(ci),
        }
    }
    for (ci, i) in near {
        let e = &expected[i];
        report.emit(XB003, Some(Location::Clause(ci as u32)), cap, || {
            format!(
                "clause {} matches the Tseitin definition clause {} of gate n{} \
                 ({}) on variables but differs in polarity",
                clause_dimacs(&f.clauses()[ci]),
                e.which + 1,
                e.node,
                clause_dimacs(&e.lits)
            )
        });
    }
    for ci in unexplained {
        report.emit(XB004, Some(Location::Clause(ci as u32)), cap, || {
            format!(
                "clause {} is not a Tseitin definition clause of any AND gate",
                clause_dimacs(&f.clauses()[ci])
            )
        });
    }
    for (i, e) in expected.iter().enumerate() {
        if !matched[i] {
            report.emit(XB002, Some(Location::Node(e.node)), cap, || {
                if e.node == 0 {
                    format!(
                        "the constant-pin unit clause {} is missing from the CNF",
                        clause_dimacs(&e.lits)
                    )
                } else {
                    format!(
                        "Tseitin definition clause {} of gate n{} ({}) is missing from the CNF",
                        e.which + 1,
                        e.node,
                        clause_dimacs(&e.lits)
                    )
                }
            });
        }
    }
}

/// Solver literal of an AIG edge under the identity node-to-variable map.
fn aig_lit(l: aig::Lit) -> Lit {
    Var::new(l.node().index()).lit(l.is_complemented())
}

/// CNF ↔ proof: every input step's clause must occur in the CNF.
fn lint_cnf_proof(f: &Cnf, p: &Proof, report: &mut Report, cap: usize) {
    let mut clauses: HashMap<Vec<Lit>, usize> = HashMap::with_capacity(f.num_clauses());
    let mut vars: HashMap<Vec<u32>, usize> = HashMap::with_capacity(f.num_clauses());
    for (ci, clause) in f.clauses().iter().enumerate() {
        let norm = normalize_clause(clause.clone());
        vars.entry(clause_vars(&norm)).or_insert(ci);
        clauses.entry(norm).or_insert(ci);
    }
    for (id, step) in p.iter() {
        if !step.is_original() {
            continue;
        }
        // Step clauses are already sorted and deduplicated.
        if clauses.contains_key(step.clause) {
            continue;
        }
        let loc = Some(Location::Step(id.index()));
        match vars.get(&clause_vars(step.clause)) {
            Some(&ci) => report.emit(XB006, loc, cap, || {
                format!(
                    "input step records {} but the CNF's clause {ci} over the same \
                     variables is {} (sign flip; literal order is normalized)",
                    clause_dimacs(step.clause),
                    clause_dimacs(&f.clauses()[ci])
                )
            }),
            None => report.emit(XB005, loc, cap, || {
                format!(
                    "input step records {}, which occurs nowhere in the CNF",
                    clause_dimacs(step.clause)
                )
            }),
        }
    }
}

/// Certificate ↔ proof: recorded metadata must describe this proof.
fn lint_cert_proof(c: &CertificateInfo, p: &Proof, report: &mut Report, cap: usize) {
    let actual = p.empty_clause().map(proof::ClauseId::index);
    match (c.empty_clause, actual) {
        (Some(claimed), Some(real)) if claimed != real => {
            report.emit(XB007, Some(Location::Step(claimed)), cap, || {
                format!(
                    "certificate points at step c{claimed} as the empty clause, \
                     but the proof's empty clause is c{real}"
                )
            });
        }
        (Some(claimed), None) => {
            report.emit(XB007, Some(Location::Step(claimed)), cap, || {
                format!(
                    "certificate points at step c{claimed} as the empty clause, \
                     but the proof contains none"
                )
            });
        }
        (None, Some(real)) => {
            report.emit(XB007, Some(Location::Step(real)), cap, || {
                format!("the proof refutes at step c{real} but the certificate records no empty-clause id")
            });
        }
        _ => {}
    }

    let boundaries = &c.stitch_boundaries;
    if let Some(rounds) = c.rounds {
        let expected = if rounds == 0 && boundaries.is_empty() {
            0
        } else {
            rounds + 1
        };
        if boundaries.len() as u64 != expected {
            report.emit(XB008, None, cap, || {
                format!(
                    "certificate records {rounds} parallel rounds but {} stitch \
                     boundaries (a stitched run records rounds + 1)",
                    boundaries.len()
                )
            });
        }
    }
    for w in boundaries.windows(2) {
        if w[1] < w[0] {
            report.emit(XB008, None, cap, || {
                format!("stitch boundaries decrease: {} after {}", w[1], w[0])
            });
        }
    }
    if let Some(&last) = boundaries.last() {
        if last as usize > p.len() {
            report.emit(XB008, None, cap, || {
                format!(
                    "stitch boundary {last} exceeds the proof length {}",
                    p.len()
                )
            });
        }
    }

    let counts = [
        (
            "input",
            c.original.map(|n| n as u64),
            p.num_original() as u64,
        ),
        (
            "derived",
            c.derived.map(|n| n as u64),
            p.num_derived() as u64,
        ),
        ("resolution", c.resolutions, p.num_resolutions()),
    ];
    for (what, claimed, real) in counts {
        if let Some(n) = claimed {
            if n != real {
                report.emit(XB009, None, cap, || {
                    format!("certificate claims {n} {what} steps, the proof has {real}")
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintOptions;

    /// x2 = x0 ∧ x1 over inputs n1, n2 with the AND at n3 — wait, node 0
    /// is the constant, so inputs are n1/n2 and the gate is n3.
    fn gate() -> Aig {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let n = g.and(x, y);
        g.add_output(n);
        g
    }

    fn encoding(g: &Aig) -> Cnf {
        cnf::tseitin::encode(g).cnf
    }

    fn opts() -> LintOptions {
        LintOptions::default()
    }

    fn proof_of(f: &Cnf) -> Proof {
        let mut p = Proof::new();
        for c in f.clauses() {
            p.add_original(c.iter().copied());
        }
        p
    }

    #[test]
    fn clean_bundle_is_clean() {
        let g = gate();
        let mut f = encoding(&g);
        // Assert the output, the way an engine would.
        f.add_clause(vec![Var::new(3).positive()]);
        let p = proof_of(&f);
        let info = CertificateInfo {
            original: Some(p.num_original()),
            derived: Some(0),
            resolutions: Some(0),
            rounds: Some(0),
            ..CertificateInfo::default()
        };
        let r = lint_bundle(
            &Bundle {
                aig: Some(&g),
                cnf: Some(&f),
                proof: Some(&p),
                certificate: Some(&info),
            },
            &opts(),
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        assert_eq!(r.counts().warnings, 0, "{:?}", r.diagnostics());
    }

    #[test]
    fn missing_gate_clause_is_xb002() {
        let g = gate();
        let mut f = encoding(&g);
        f.clauses_mut().remove(2);
        let r = lint_bundle(
            &Bundle {
                aig: Some(&g),
                cnf: Some(&f),
                ..Bundle::default()
            },
            &opts(),
        );
        assert!(r.has("XB002"), "{:?}", r.diagnostics());
        assert!(!r.is_clean());
    }

    #[test]
    fn sign_flip_is_xb003_not_xb002() {
        let g = gate();
        let mut f = encoding(&g);
        // Flip the first literal of the three-literal clause (x ∨ ¬a ∨ ¬b).
        let victim = f
            .clauses_mut()
            .iter_mut()
            .find(|c| c.len() == 3)
            .expect("t3 present");
        victim[0] = !victim[0];
        let r = lint_bundle(
            &Bundle {
                aig: Some(&g),
                cnf: Some(&f),
                ..Bundle::default()
            },
            &opts(),
        );
        assert!(r.has("XB003"), "{:?}", r.diagnostics());
        assert!(!r.has("XB002"), "{:?}", r.diagnostics());
        assert!(!r.has("XB004"), "{:?}", r.diagnostics());
    }

    #[test]
    fn alien_clause_is_xb004_warning() {
        let g = gate();
        let mut f = encoding(&g);
        f.add_clause(vec![Var::new(1).positive(), Var::new(4).positive()]);
        let r = lint_bundle(
            &Bundle {
                aig: Some(&g),
                cnf: Some(&f),
                ..Bundle::default()
            },
            &opts(),
        );
        assert!(r.has("XB004"), "{:?}", r.diagnostics());
        assert!(r.is_clean(), "XB004 is a warning");
    }

    #[test]
    fn narrow_cnf_is_xb001() {
        let g = gate();
        let f = Cnf::with_vars(2); // 4 nodes need 4 variables
        let r = lint_bundle(
            &Bundle {
                aig: Some(&g),
                cnf: Some(&f),
                ..Bundle::default()
            },
            &opts(),
        );
        assert!(r.has("XB001"), "{:?}", r.diagnostics());
    }

    #[test]
    fn foreign_and_near_miss_inputs_are_xb005_xb006() {
        let g = gate();
        let f = encoding(&g);
        let mut p = proof_of(&f);
        // Same variables as t1 of the gate but flipped signs: near miss.
        p.add_original([Var::new(3).positive(), Var::new(1).negative()]);
        // Variables no CNF clause has together: foreign.
        p.add_original([Var::new(0).positive(), Var::new(2).positive()]);
        let r = lint_bundle(
            &Bundle {
                cnf: Some(&f),
                proof: Some(&p),
                ..Bundle::default()
            },
            &opts(),
        );
        assert_eq!(r.total("XB006"), 1, "{:?}", r.diagnostics());
        assert_eq!(r.total("XB005"), 1, "{:?}", r.diagnostics());
    }

    #[test]
    fn certificate_mismatches_are_distinct_codes() {
        let mut p = Proof::new();
        let a = p.add_original([Var::new(0).positive()]);
        let b = p.add_original([Var::new(0).negative()]);
        let e = p.add_derived([], [a, b]);
        let good = CertificateInfo {
            empty_clause: Some(e.index()),
            rounds: Some(0),
            original: Some(2),
            derived: Some(1),
            resolutions: Some(1),
            ..CertificateInfo::default()
        };
        let clean = lint_bundle(
            &Bundle {
                proof: Some(&p),
                certificate: Some(&good),
                ..Bundle::default()
            },
            &opts(),
        );
        assert!(clean.is_clean(), "{:?}", clean.diagnostics());

        let wrong_empty = CertificateInfo {
            empty_clause: Some(0),
            ..good.clone()
        };
        let dropped_boundary = CertificateInfo {
            rounds: Some(2),
            stitch_boundaries: vec![1, 2],
            ..good.clone()
        };
        let wrong_stats = CertificateInfo {
            resolutions: Some(7),
            ..good.clone()
        };
        for (cert, code) in [
            (&wrong_empty, "XB007"),
            (&dropped_boundary, "XB008"),
            (&wrong_stats, "XB009"),
        ] {
            let r = lint_bundle(
                &Bundle {
                    proof: Some(&p),
                    certificate: Some(cert),
                    ..Bundle::default()
                },
                &opts(),
            );
            assert!(r.has(code), "{code}: {:?}", r.diagnostics());
            assert_eq!(r.counts().errors, 1, "{code}: {:?}", r.diagnostics());
        }
    }

    #[test]
    fn decreasing_and_overlong_boundaries_are_xb008() {
        let mut p = Proof::new();
        p.add_original([Var::new(0).positive()]);
        let r = lint_bundle(
            &Bundle {
                proof: Some(&p),
                certificate: Some(&CertificateInfo {
                    rounds: Some(1),
                    stitch_boundaries: vec![5, 3],
                    ..CertificateInfo::default()
                }),
                ..Bundle::default()
            },
            &opts(),
        );
        // Decreasing *and* beyond the proof length.
        assert_eq!(r.total("XB008"), 2, "{:?}", r.diagnostics());
    }

    #[test]
    fn cert_text_round_trips() {
        let info = CertificateInfo {
            empty_clause: Some(42),
            rounds: Some(3),
            stitch_boundaries: vec![10, 20, 30, 40],
            original: Some(7),
            derived: Some(35),
            resolutions: Some(99),
        };
        let mut buf = Vec::new();
        info.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(CertificateInfo::parse(&text).unwrap(), info);
        assert!(CertificateInfo::parse("bogus 1\n").is_err());
        assert!(CertificateInfo::parse("rounds\n").is_err());
        assert!(CertificateInfo::parse("rounds 1 2\n").is_err());
        assert!(CertificateInfo::parse("c comment\n\n").is_ok());
    }
}
