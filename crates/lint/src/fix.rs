//! Mechanical proof repair for `rplint --fix`.
//!
//! [`fix_proof`] applies only transformations that cannot change what
//! the proof proves:
//!
//! 1. **Duplicate-derivation dedup** — a derived step whose clause is
//!    identical (steps store clauses sorted and duplicate-free) to an
//!    earlier step's clause is dropped and every reference to it is
//!    remapped to the earlier step. Chain resolution depends only on the
//!    *clauses* of the antecedents, so the remap preserves validity.
//! 2. **Tautology pruning** — a step whose clause contains `x` and `¬x`
//!    and which no later step references is dropped. A tautology is
//!    vacuously true, so nothing can depend on dropping it; referenced
//!    tautologies are kept (removing them would dangle antecedents).
//! 3. **Dead-step stripping** — when the proof contains an empty
//!    clause, [`proof::trim`] keeps only its backward-reachable cone.
//!    This preserves the refutation by construction.
//!
//! The three passes repeat until a full round changes nothing — the
//! fix-point contract. Each pass strictly shrinks the proof when it does
//! anything, so termination is immediate. The driver in `rplint`
//! additionally re-runs [`fix_proof`] on its own output and refuses to
//! write if the second run is not a no-op.

use crate::is_tautology;
use proof::{ClauseId, Proof};
use std::collections::HashMap;

/// What [`fix_proof`] did, by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixSummary {
    /// Full dedup/prune/trim rounds executed (including the final
    /// round that found nothing left to do).
    pub passes: usize,
    /// Derived steps dropped because an earlier step had the same clause.
    pub deduped: usize,
    /// Unreferenced tautological steps dropped.
    pub tautologies: usize,
    /// Derived steps outside the empty clause's cone, dropped by trim.
    pub dead_derived: usize,
    /// Input steps outside the empty clause's cone, dropped by trim.
    pub dead_inputs: usize,
}

impl FixSummary {
    /// Total steps removed across all categories.
    pub fn removed(&self) -> usize {
        self.deduped + self.tautologies + self.dead_derived + self.dead_inputs
    }
}

/// The outcome of [`fix_proof`].
#[derive(Clone, Debug)]
pub struct FixResult {
    /// The repaired proof (identical to the input when nothing applied).
    pub proof: Proof,
    /// Whether any step was removed.
    pub changed: bool,
    /// Removal counts per category.
    pub summary: FixSummary,
}

/// Applies mechanical repairs (dedup, tautology pruning, dead-step
/// stripping) to fix-point. See the module docs for the exact contract.
pub fn fix_proof(p: &Proof) -> FixResult {
    let mut cur = p.clone();
    let mut summary = FixSummary::default();
    let mut changed = true;
    while changed {
        changed = false;
        summary.passes += 1;
        if let Some(next) = dedup_derivations(&cur, &mut summary) {
            cur = next;
            changed = true;
        }
        if let Some(next) = prune_tautologies(&cur, &mut summary) {
            cur = next;
            changed = true;
        }
        if let Some(root) = cur.empty_clause() {
            let tr = proof::trim(&cur, root);
            if tr.proof.len() < cur.len() {
                for (id, step) in cur.iter() {
                    if !tr.kept(id) {
                        if step.is_original() {
                            summary.dead_inputs += 1;
                        } else {
                            summary.dead_derived += 1;
                        }
                    }
                }
                cur = tr.proof;
                changed = true;
            }
        }
    }
    FixResult {
        changed: summary.removed() > 0,
        summary,
        proof: cur,
    }
}

/// Drops derived steps whose clause already occurred, remapping
/// references to the first occurrence. Returns `None` when nothing to do.
fn dedup_derivations(p: &Proof, summary: &mut FixSummary) -> Option<Proof> {
    let mut seen: HashMap<&[cnf::Lit], ClauseId> = HashMap::with_capacity(p.len());
    let mut map: Vec<ClauseId> = Vec::with_capacity(p.len());
    let mut out = Proof::new();
    let mut dropped = 0usize;
    for (id, step) in p.iter() {
        if !step.is_original() {
            if let Some(&first) = seen.get(step.clause) {
                map.push(first);
                dropped += 1;
                continue;
            }
        }
        let nid = if step.is_original() {
            out.add_original(step.clause.iter().copied())
        } else {
            let ants: Vec<ClauseId> = step.antecedents.iter().map(|a| map[a.as_usize()]).collect();
            out.add_derived(step.clause.iter().copied(), ants)
        };
        out.set_role(nid, p.role(id));
        seen.entry(step.clause).or_insert(nid);
        map.push(nid);
    }
    if dropped == 0 {
        return None;
    }
    summary.deduped += dropped;
    Some(out)
}

/// Drops unreferenced tautological steps. Returns `None` when nothing
/// to do.
fn prune_tautologies(p: &Proof, summary: &mut FixSummary) -> Option<Proof> {
    let mut referenced = vec![false; p.len()];
    for (_, step) in p.iter() {
        for &a in step.antecedents {
            referenced[a.as_usize()] = true;
        }
    }
    let doomed: Vec<bool> = p
        .iter()
        .map(|(id, step)| !referenced[id.as_usize()] && is_tautology(step.clause))
        .collect();
    let dropped = doomed.iter().filter(|&&d| d).count();
    if dropped == 0 {
        return None;
    }
    let mut map: Vec<ClauseId> = Vec::with_capacity(p.len());
    let mut out = Proof::new();
    for (id, step) in p.iter() {
        if doomed[id.as_usize()] {
            // Never referenced, so the placeholder id is never read.
            map.push(ClauseId::new(0));
            continue;
        }
        let nid = if step.is_original() {
            out.add_original(step.clause.iter().copied())
        } else {
            let ants: Vec<ClauseId> = step.antecedents.iter().map(|a| map[a.as_usize()]).collect();
            out.add_derived(step.clause.iter().copied(), ants)
        };
        out.set_role(nid, p.role(id));
        map.push(nid);
    }
    summary.tautologies += dropped;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn lits(xs: &[i32]) -> Vec<cnf::Lit> {
        xs.iter()
            .map(|&v| Var::new(v.unsigned_abs() - 1).lit(v < 0))
            .collect()
    }

    /// The xor-style refutation used across the proof crate's tests,
    /// padded with a dead derivation, a duplicate derivation, and an
    /// unreferenced tautology.
    fn messy_refutation() -> Proof {
        let mut p = Proof::new();
        let c1 = p.add_original(lits(&[1, 2]));
        let c2 = p.add_original(lits(&[-1, 2]));
        let c3 = p.add_original(lits(&[1, -2]));
        let c4 = p.add_original(lits(&[-1, -2]));
        let b = p.add_derived(lits(&[2]), [c1, c2]);
        let _dup = p.add_derived(lits(&[2]), [c1, c2]);
        let _dead = p.add_derived(lits(&[1]), [c1, c3]);
        let _taut = p.add_original(lits(&[1, -1]));
        let nb = p.add_derived(lits(&[-2]), [c3, c4]);
        p.add_derived([], [b, nb]);
        p
    }

    #[test]
    fn repairs_and_reaches_fix_point() {
        let p = messy_refutation();
        assert!(p.check().is_ok());
        let fixed = fix_proof(&p);
        assert!(fixed.changed);
        assert!(fixed.proof.len() < p.len());
        assert!(fixed.proof.check().is_ok());
        assert!(
            fixed.proof.empty_clause().is_some(),
            "refutation must survive"
        );
        assert_eq!(fixed.summary.deduped, 1);
        assert_eq!(fixed.summary.tautologies, 1);
        assert_eq!(fixed.summary.dead_derived, 1);
        assert_eq!(fixed.summary.removed(), 3);

        // Second run is a no-op: the fix-point contract.
        let again = fix_proof(&fixed.proof);
        assert!(!again.changed);
        assert_eq!(again.summary.removed(), 0);
        assert_eq!(again.proof.len(), fixed.proof.len());
    }

    #[test]
    fn clean_proof_is_untouched() {
        let mut p = Proof::new();
        let a = p.add_original(lits(&[1]));
        let na = p.add_original(lits(&[-1]));
        p.add_derived([], [a, na]);
        let fixed = fix_proof(&p);
        assert!(!fixed.changed);
        assert_eq!(fixed.proof.len(), 3);
        assert_eq!(fixed.summary.passes, 1);
    }

    #[test]
    fn referenced_tautology_is_kept() {
        // A referenced tautology must not be dropped: removing it would
        // dangle its dependant's antecedent list.
        let mut p = Proof::new();
        let t = p.add_original(lits(&[1, -1, 3]));
        let c = p.add_original(lits(&[-1, 2]));
        p.add_derived(lits(&[-1, 2, 3]), [t, c]);
        let fixed = fix_proof(&p);
        assert!(!fixed.changed);
        assert_eq!(fixed.proof.len(), 3);
        assert_eq!(fixed.summary.tautologies, 0);
    }

    #[test]
    fn dedup_without_refutation_still_applies() {
        let mut p = Proof::new();
        let a = p.add_original(lits(&[1, 2]));
        let b = p.add_original(lits(&[-1, 2]));
        p.add_derived(lits(&[2]), [a, b]);
        p.add_derived(lits(&[2]), [a, b]);
        let fixed = fix_proof(&p);
        assert!(fixed.changed);
        assert_eq!(fixed.summary.deduped, 1);
        assert_eq!(fixed.proof.len(), 3);
        assert!(fixed.proof.check().is_ok());
    }
}
