//! Lenient triage scanner for durability run-state journals.
//!
//! Where `obs::journal::read_journal` is the *strict* loader (first
//! defect wins, typed error), this pass reads the whole file and maps
//! every defect class to a stable `JN` code, so a corrupted journal can
//! be triaged line by line. A journal left behind by a crash is
//! *supposed* to look a particular way — at most a torn final line
//! ([`JN005`](crate::JN005), warning) and no verdict record
//! ([`JN006`](crate::JN006), info) — so only damage that a clean crash
//! cannot produce is an error.

use crate::{
    Artifact, LintOptions, Location, Report, JN001, JN002, JN003, JN004, JN005, JN006, JN007,
};
use obs::hash::fnv1a64_hex;
use obs::json::{self, Value};
use std::io::{self, BufRead};

/// Record types the engine writes.
const RECORD_TYPES: &[&str] = &["header", "checkpoint", "verdict"];

/// What one journal line failed at, if anything.
enum LineDefect {
    Parse(String),
    Checksum { recorded: String, actual: String },
    SequenceGap { expected: u64, found: u64 },
}

/// Scans one line; `Ok` carries the record type on success.
fn scan_line(line: &str, expected_seq: u64) -> Result<String, LineDefect> {
    let v = json::parse(line).map_err(|e| LineDefect::Parse(format!("not a JSON record: {e}")))?;
    let seq = v
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or_else(|| LineDefect::Parse("missing `seq` field".into()))?;
    let crc = v
        .get("crc")
        .and_then(Value::as_str)
        .ok_or_else(|| LineDefect::Parse("missing `crc` field".into()))?;
    let body = v
        .get("body")
        .ok_or_else(|| LineDefect::Parse("missing `body` field".into()))?;
    let actual = fnv1a64_hex(body.to_string().as_bytes());
    if actual != crc {
        return Err(LineDefect::Checksum {
            recorded: crc.to_string(),
            actual,
        });
    }
    if seq != expected_seq {
        return Err(LineDefect::SequenceGap {
            expected: expected_seq,
            found: seq,
        });
    }
    let kind = body.get("type").and_then(Value::as_str).unwrap_or("");
    if !RECORD_TYPES.contains(&kind) {
        return Err(LineDefect::Parse(format!(
            "unknown record type `{kind}` (expected one of {})",
            RECORD_TYPES.join(", ")
        )));
    }
    Ok(kind.to_string())
}

/// Lints a durability journal read from `r`.
///
/// # Errors
///
/// Forwards I/O errors from `r`; every *content* defect becomes a
/// diagnostic instead.
pub fn lint_journal<R: BufRead>(r: R, opts: &LintOptions) -> io::Result<Report> {
    let mut report = Report::new(Artifact::Journal);
    let cap = opts.max_per_lint;
    let mut lines: Vec<(u32, String)> = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        lines.push((i as u32 + 1, line));
    }

    let mut intact = 0u64;
    let mut saw_header = false;
    let mut saw_verdict = false;
    for (i, (line_no, line)) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        match scan_line(line, intact) {
            Ok(kind) => {
                match kind.as_str() {
                    "header" if intact == 0 => saw_header = true,
                    "header" => report.emit(JN007, Some(Location::Line(*line_no)), cap, || {
                        "header record after the first record".into()
                    }),
                    "verdict" => saw_verdict = true,
                    _ => {}
                }
                intact += 1;
            }
            // A torn final line is the expected shape of a crash.
            Err(LineDefect::Parse(_) | LineDefect::Checksum { .. }) if last => {
                report.emit(JN005, Some(Location::Line(*line_no)), cap, || {
                    "final line is torn (dropped on load)".into()
                });
            }
            Err(LineDefect::Parse(msg)) => {
                report.emit(JN001, Some(Location::Line(*line_no)), cap, || msg);
            }
            Err(LineDefect::Checksum { recorded, actual }) => {
                report.emit(JN002, Some(Location::Line(*line_no)), cap, || {
                    format!("recorded checksum {recorded}, actual {actual}")
                });
            }
            Err(LineDefect::SequenceGap { expected, found }) => {
                report.emit(JN003, Some(Location::Line(*line_no)), cap, || {
                    format!("expected seq {expected}, found {found}")
                });
                // Resynchronize so one gap doesn't cascade down the file.
                intact = found + 1;
            }
        }
    }

    if !saw_header {
        report.emit(JN004, None, cap, || {
            "journal does not begin with a header record".into()
        });
    }
    if !saw_verdict {
        report.emit(JN006, None, cap, || {
            "no verdict record — run incomplete".into()
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::journal::JournalWriter;
    use std::io::Cursor;

    fn record(kind: &str, extra: &[(&str, Value)]) -> Value {
        let mut entries = vec![("type".to_string(), Value::str(kind))];
        for (k, v) in extra {
            entries.push(((*k).to_string(), v.clone()));
        }
        Value::Object(entries)
    }

    /// Writes a well-formed journal to a string via a temp file.
    fn journal_text(bodies: &[Value]) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lint-journal-test-{}-{}.journal",
            std::process::id(),
            bodies.len()
        ));
        let mut w = JournalWriter::create(&p).unwrap();
        for b in bodies {
            w.write(b).unwrap();
        }
        drop(w);
        let text = std::fs::read_to_string(&p).unwrap();
        let _ = std::fs::remove_file(&p);
        text
    }

    fn lint(text: &str) -> Report {
        lint_journal(Cursor::new(text), &LintOptions::default()).unwrap()
    }

    #[test]
    fn complete_journal_is_clean() {
        let text = journal_text(&[
            record("header", &[("format", Value::U64(1))]),
            record("checkpoint", &[("phase", Value::str("sweep"))]),
            record("verdict", &[("equivalent", Value::Bool(true))]),
        ]);
        let r = lint(&text);
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        assert_eq!(r.counts().warnings, 0);
        assert_eq!(r.counts().infos, 0);
    }

    #[test]
    fn crashed_journal_is_unfinished_not_corrupt() {
        let mut text = journal_text(&[
            record("header", &[("format", Value::U64(1))]),
            record("checkpoint", &[("phase", Value::str("miter"))]),
        ]);
        text.push_str("{\"seq\":2,\"crc\":\"00");
        let r = lint(&text);
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        assert!(r.has("JN005"));
        assert!(r.has("JN006"));
    }

    #[test]
    fn mid_file_damage_is_an_error() {
        let text = journal_text(&[
            record("header", &[("format", Value::U64(1))]),
            record("checkpoint", &[("phase", Value::str("miter"))]),
            record("verdict", &[("equivalent", Value::Bool(true))]),
        ]);
        // Flip a byte in the middle record's body.
        let flipped = text.replacen("miter", "mitre", 1);
        let r = lint(&flipped);
        assert!(r.has("JN002"), "{:?}", r.diagnostics());
        assert!(!r.is_clean());

        // Destroy the middle record's JSON entirely.
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\nnot json at all\n{}\n", lines[0], lines[2]);
        let r = lint(&mangled);
        assert!(r.has("JN001"), "{:?}", r.diagnostics());
        // The surviving verdict record now has a gapped seq.
        assert!(r.has("JN003"), "{:?}", r.diagnostics());
    }

    #[test]
    fn missing_and_duplicate_headers() {
        let text = journal_text(&[record("checkpoint", &[("phase", Value::str("sim"))])]);
        let r = lint(&text);
        assert!(r.has("JN004"), "{:?}", r.diagnostics());

        let text = journal_text(&[
            record("header", &[("format", Value::U64(1))]),
            record("header", &[("format", Value::U64(1))]),
        ]);
        let r = lint(&text);
        assert!(r.has("JN007"), "{:?}", r.diagnostics());
    }

    #[test]
    fn unknown_record_type_is_a_parse_error() {
        let text = journal_text(&[
            record("header", &[("format", Value::U64(1))]),
            record("warp", &[]),
            record("verdict", &[("equivalent", Value::Bool(true))]),
        ]);
        let r = lint(&text);
        assert!(r.has("JN001"), "{:?}", r.diagnostics());
    }

    #[test]
    fn empty_journal_reports_missing_header() {
        let r = lint("");
        assert!(r.has("JN004"));
        assert!(r.has("JN006"));
    }
}
