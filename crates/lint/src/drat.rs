//! Lenient DRAT front-end (`DR` codes).
//!
//! DRAT is the clausal proof format of the SAT-competition world: one
//! clause per line, DIMACS literals terminated by `0`, with an optional
//! leading `d` marking a deletion. `proof::export::write_drat` emits the
//! additions-only subset (derived clauses in order, no deletions); this
//! scanner accepts the full format so third-party traces can be audited
//! too.
//!
//! Like [`crate::lint_tracecheck`], the pass is a *lenient* scanner: a
//! malformed line is a `DR001` diagnostic, not a hard error, and the
//! remaining lines are still processed. Semantic checks:
//!
//! - `DR002`: with a formula present and [`LintOptions::chain`] set,
//!   every non-tautological addition is checked to be a reverse unit
//!   propagation (RUP) consequence of the formula plus the still-active
//!   additions. This validates plain DRUP traces; genuine RAT additions
//!   (which are *not* RUP) will be flagged — the engine never emits
//!   them.
//! - `DR003`: a deletion names a clause with no active copy.
//! - `DR004`: an addition duplicates an already-active clause verbatim
//!   (modulo literal order).
//! - `DR005`: [`LintOptions::expect_refutation`] is set but the trace
//!   never adds the empty clause.
//!
//! Leniency has a direction: deleting a clause does **not** retract the
//! unit-propagation prefix it may have contributed to, so the
//! accumulated base assignment can be stale-strong. That can only make
//! a RUP check pass that should fail (a missed defect), never report a
//! sound addition as `DR002`.

use crate::{
    clause_dimacs, is_tautology, normalize_clause, Artifact, LintOptions, Location, Report, DR001,
    DR002, DR003, DR004, DR005,
};
use cnf::{Cnf, Lit};
use std::collections::HashMap;
use std::io::{self, BufRead};
use std::num::NonZeroI32;

/// Scans a DRAT file. `formula` is the CNF the trace refutes; without
/// it, only the grammar and the addition/deletion bookkeeping
/// (`DR001`, `DR003`, `DR004`, `DR005`) are checked.
///
/// # Errors
///
/// Returns an error only on I/O failure; malformed input is reported
/// through the returned [`Report`].
pub fn lint_drat<R: BufRead>(
    reader: R,
    formula: Option<&Cnf>,
    opts: &LintOptions,
) -> io::Result<Report> {
    let mut report = Report::new(Artifact::Drat);
    let cap = opts.max_per_lint;
    let mut store = Store::default();
    if let Some(f) = formula {
        for c in f.clauses() {
            store.load(normalize_clause(c.clone()));
        }
    }
    let check_rup = formula.is_some() && opts.chain;
    let mut saw_empty = false;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = (line_no + 1) as u32;
        let loc = Some(Location::Line(lineno));
        let mut tokens = line.split_whitespace().peekable();
        let Some(&first) = tokens.peek() else {
            continue;
        };
        if first.starts_with('c') {
            continue;
        }
        let deleting = first == "d";
        if deleting {
            tokens.next();
        }
        let mut lits = Vec::new();
        let mut terminated = false;
        let mut bad = false;
        for tok in tokens {
            if terminated {
                report.emit(DR001, loc, cap, || {
                    format!("trailing token `{tok}` after the terminating 0")
                });
                bad = true;
                break;
            }
            match tok.parse::<i32>() {
                Ok(0) => terminated = true,
                Ok(v) => {
                    let nz = NonZeroI32::new(v).expect("zero handled above");
                    lits.push(Lit::from_dimacs(nz));
                }
                Err(e) => {
                    report.emit(DR001, loc, cap, || format!("bad literal `{tok}`: {e}"));
                    bad = true;
                    break;
                }
            }
        }
        if bad {
            continue;
        }
        if !terminated {
            report.emit(DR001, loc, cap, || {
                "clause line is missing the terminating 0".to_owned()
            });
            continue;
        }

        let clause = normalize_clause(lits);
        if deleting {
            if !store.delete(&clause) {
                report.emit(DR003, loc, cap, || {
                    format!(
                        "deletion of {}, which is neither in the formula nor \
                         currently added",
                        clause_dimacs(&clause)
                    )
                });
            }
            continue;
        }
        if clause.is_empty() {
            saw_empty = true;
        }
        if store.count(&clause) > 0 {
            report.emit(DR004, loc, cap, || {
                format!("clause {} is already active", clause_dimacs(&clause))
            });
        }
        if check_rup && !is_tautology(&clause) && !store.check_rup(&clause) {
            report.emit(DR002, loc, cap, || {
                format!(
                    "added clause {} is not a unit-propagation consequence of \
                     the accumulated formula",
                    clause_dimacs(&clause)
                )
            });
        }
        store.load(clause);
    }

    if opts.expect_refutation && !saw_empty {
        report.emit(DR005, None, cap, || {
            "the trace never adds the empty clause, so it refutes nothing".to_owned()
        });
    }
    Ok(report)
}

/// The accumulated formula plus a persistent unit-propagation prefix.
///
/// Clauses are normalized before entering. Unit propagation from unit
/// clauses runs eagerly on load (the *base* assignment); a RUP check
/// assumes the negation of the candidate on top of the base, propagates,
/// and unwinds its own trail suffix afterwards.
#[derive(Default)]
struct Store {
    clauses: Vec<Vec<Lit>>,
    active: Vec<bool>,
    /// Literal code → indices of clauses containing it (never shrunk;
    /// deactivated clauses are skipped during scans).
    occ: Vec<Vec<usize>>,
    /// Active copies by normalized literals, for deletion and
    /// duplicate detection.
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// Per-variable value: 1 true, -1 false, 0 unassigned.
    value: Vec<i8>,
    /// Assigned-true literals, base prefix first.
    trail: Vec<Lit>,
    base_len: usize,
    /// The base itself is contradictory: every RUP check succeeds.
    base_conflict: bool,
}

impl Store {
    fn ensure(&mut self, clause: &[Lit]) {
        if let Some(l) = clause.last() {
            // Normalized clauses are sorted by code, so the last literal
            // bounds both the value and the occurrence tables.
            let vars = l.var().as_usize() + 1;
            if self.value.len() < vars {
                self.value.resize(vars, 0);
            }
        }
    }

    fn val(&self, l: Lit) -> i8 {
        let v = self.value[l.var().as_usize()];
        if l.is_negative() {
            -v
        } else {
            v
        }
    }

    fn assign(&mut self, l: Lit) {
        self.value[l.var().as_usize()] = if l.is_negative() { -1 } else { 1 };
        self.trail.push(l);
    }

    fn count(&self, clause: &[Lit]) -> usize {
        self.index.get(clause).map_or(0, Vec::len)
    }

    fn load(&mut self, clause: Vec<Lit>) {
        self.ensure(&clause);
        let ci = self.clauses.len();
        self.index.entry(clause.clone()).or_default().push(ci);
        let taut = is_tautology(&clause);
        if !taut {
            for &l in &clause {
                let code = l.code() as usize;
                if self.occ.len() <= code {
                    self.occ.resize_with(code + 1, Vec::new);
                }
                self.occ[code].push(ci);
            }
        }
        self.clauses.push(clause);
        self.active.push(true);
        if taut || self.base_conflict {
            return;
        }
        // Extend the base if the new clause is unit (or empty) under it.
        let c = &self.clauses[ci];
        if c.iter().any(|&l| self.val(l) == 1) {
            return;
        }
        let mut unit = None;
        let mut unassigned = 0usize;
        for &l in c {
            if self.val(l) == 0 {
                unassigned += 1;
                unit = Some(l);
            }
        }
        match unassigned {
            0 => self.base_conflict = true,
            1 => {
                let head = self.trail.len();
                self.assign(unit.expect("counted one"));
                if self.propagate(head) {
                    self.base_conflict = true;
                }
                self.base_len = self.trail.len();
            }
            _ => {}
        }
    }

    fn delete(&mut self, clause: &[Lit]) -> bool {
        match self.index.get_mut(clause) {
            Some(v) if !v.is_empty() => {
                let ci = v.pop().expect("non-empty");
                self.active[ci] = false;
                true
            }
            _ => false,
        }
    }

    /// Unit propagation from `trail[head..]`. Returns true on conflict.
    fn propagate(&mut self, mut head: usize) -> bool {
        while head < self.trail.len() {
            let l = self.trail[head];
            head += 1;
            let falsified = (!l).code() as usize;
            if falsified >= self.occ.len() {
                continue;
            }
            for wi in 0..self.occ[falsified].len() {
                let ci = self.occ[falsified][wi];
                if !self.active[ci] {
                    continue;
                }
                let mut satisfied = false;
                let mut unit = None;
                let mut unassigned = 0usize;
                for i in 0..self.clauses[ci].len() {
                    let cl = self.clauses[ci][i];
                    match self.val(cl) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        0 => {
                            unassigned += 1;
                            unit = Some(cl);
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned {
                    0 => return true,
                    1 => self.assign(unit.expect("counted one")),
                    _ => {}
                }
            }
        }
        false
    }

    /// Does `clause` follow from the active set by reverse unit
    /// propagation? Leaves the base assignment untouched.
    fn check_rup(&mut self, clause: &[Lit]) -> bool {
        if self.base_conflict {
            return true;
        }
        self.ensure(clause);
        let start = self.trail.len();
        let mut conflict = false;
        for &l in clause {
            match self.val(l) {
                // The base already satisfies a literal of the clause, so
                // assuming its negation is immediately contradictory.
                1 => {
                    conflict = true;
                    break;
                }
                0 => self.assign(!l),
                _ => {}
            }
        }
        if !conflict {
            conflict = self.propagate(start);
        }
        while self.trail.len() > start {
            let l = self.trail.pop().expect("trail suffix");
            self.value[l.var().as_usize()] = 0;
        }
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn xor_unsat() -> Cnf {
        // (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b): unsatisfiable.
        let a = Var::new(0);
        let b = Var::new(1);
        let mut f = Cnf::new();
        f.add_clause(vec![a.positive(), b.positive()]);
        f.add_clause(vec![a.negative(), b.positive()]);
        f.add_clause(vec![a.positive(), b.negative()]);
        f.add_clause(vec![a.negative(), b.negative()]);
        f
    }

    fn lint(text: &str, formula: Option<&Cnf>, opts: &LintOptions) -> Report {
        lint_drat(text.as_bytes(), formula, opts).unwrap()
    }

    #[test]
    fn clean_refutation_is_clean() {
        let f = xor_unsat();
        let opts = LintOptions {
            expect_refutation: true,
            ..LintOptions::default()
        };
        let r = lint("c comment\n1 0\n0\n", Some(&f), &opts);
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        assert_eq!(r.counts().warnings, 0);
    }

    #[test]
    fn deletions_are_tracked() {
        let f = xor_unsat();
        let r = lint("d 1 2 0\nd 1 2 0\n", Some(&f), &LintOptions::default());
        // Second deletion has no active copy left.
        assert_eq!(r.total("DR003"), 1, "{:?}", r.diagnostics());
    }

    #[test]
    fn grammar_errors_are_dr001() {
        let f = xor_unsat();
        let r = lint("1 2\n1 x 0\n1 0 2\n", Some(&f), &LintOptions::default());
        assert_eq!(r.total("DR001"), 3, "{:?}", r.diagnostics());
    }

    #[test]
    fn non_rup_addition_is_dr002() {
        let mut f = Cnf::new();
        f.add_clause(vec![Var::new(0).positive(), Var::new(1).positive()]);
        let r = lint("1 0\n", Some(&f), &LintOptions::default());
        assert_eq!(r.total("DR002"), 1, "{:?}", r.diagnostics());
        // Without a formula the RUP check cannot run.
        let r = lint("1 0\n", None, &LintOptions::default());
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        // With structural options it is skipped on request.
        let r = lint("1 0\n", Some(&f), &LintOptions::structural());
        assert!(r.is_clean(), "{:?}", r.diagnostics());
    }

    #[test]
    fn duplicate_addition_is_dr004() {
        let f = xor_unsat();
        let r = lint("1 0\n1 0\n", Some(&f), &LintOptions::default());
        assert_eq!(r.total("DR004"), 1, "{:?}", r.diagnostics());
        // Deleting the copy first makes the re-addition fresh.
        let r = lint("1 0\nd 1 0\n1 0\n", Some(&f), &LintOptions::default());
        assert!(!r.has("DR004"), "{:?}", r.diagnostics());
    }

    #[test]
    fn missing_refutation_is_dr005() {
        let f = xor_unsat();
        let opts = LintOptions {
            expect_refutation: true,
            ..LintOptions::default()
        };
        let r = lint("1 0\n", Some(&f), &opts);
        assert_eq!(r.total("DR005"), 1, "{:?}", r.diagnostics());
    }

    #[test]
    fn tautologies_are_not_rup_checked() {
        let f = xor_unsat();
        let r = lint("1 -1 3 0\n", Some(&f), &LintOptions::default());
        assert!(!r.has("DR002"), "{:?}", r.diagnostics());
    }
}
