//! Structural and chain-analysis lints for resolution proofs.
//!
//! The structural pass (`RP0xx`) touches each step's own clause and
//! antecedent-id list exactly once — it never gathers the *contents* of
//! antecedent clauses — so it is substantially cheaper than replay and
//! is what `rplint --fast` runs. The chain pass (`RP1xx`) adds two
//! per-step analyses over antecedent literals:
//!
//! 1. **Pivot-count analysis** (order-insensitive): a chain of `k`
//!    antecedents performs `k − 1` resolutions, and each resolution on a
//!    variable `v` consumes at least one positive and one negative
//!    occurrence of `v`, so `Σ_v min(pos_v, neg_v) ≥ k − 1` is necessary
//!    ([`RP101`]); and a literal whose variable occurs in only one
//!    polarity can never be cancelled, so it must appear in the recorded
//!    clause ([`RP102`]).
//! 2. **Order replay** (runs only when pivot-count analysis passes): an
//!    abstract forward pass over the chain that tracks the running
//!    resolvent as a literal set, diagnosing missing ([`RP105`]) or
//!    ambiguous ([`RP104`]) pivots, repeated pivot variables
//!    ([`RP106`]), and leftover literals the recorded clause lacks
//!    ([`RP103`]).

use crate::{
    Artifact, LintOptions, Location, Report, Severity, RP001, RP002, RP003, RP004, RP005, RP006,
    RP007, RP101, RP102, RP103, RP104, RP105, RP106,
};
use cnf::Lit;
use proof::{ClauseId, Proof};
use std::collections::HashMap;

/// Lints a resolution proof. See the crate docs for the lint taxonomy
/// and [`LintOptions`] for the structural-only/full switch.
pub fn lint_proof(p: &Proof, opts: &LintOptions) -> Report {
    let mut r = Report::new(Artifact::Proof);
    let cap = opts.max_per_lint;
    let mut max_var = 0u32;

    // Structural pass: one sweep over each step's own clause and ids.
    let mut seen: HashMap<&[Lit], ClauseId> = HashMap::new();
    for (id, step) in p.iter() {
        for &l in step.clause {
            max_var = max_var.max(l.var().index());
        }
        for &a in step.antecedents {
            if a.index() >= id.index() {
                let what = if a == id { "itself" } else { "a later step" };
                r.emit(RP001, Some(Location::Step(id.index())), cap, || {
                    format!("antecedent {a} references {what}")
                });
            }
        }
        if step.clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            // Tautological *inputs* are junk the encoder should not have
            // emitted; tautological *derivations* can never replay.
            let sev = if step.is_original() {
                Severity::Warn
            } else {
                Severity::Error
            };
            r.emit_severity(RP003, sev, Some(Location::Step(id.index())), cap, || {
                let kind = if step.is_original() {
                    "input"
                } else {
                    "derived"
                };
                format!("{kind} clause contains a variable in both polarities")
            });
        }
        if !step.is_original() {
            if let Some(&first) = seen.get(step.clause) {
                r.emit(RP004, Some(Location::Step(id.index())), cap, || {
                    format!("derived clause repeats step {first} verbatim")
                });
                continue; // keep the first id as the canonical one
            }
        }
        seen.entry(step.clause).or_insert(id);
    }

    // Refutation cone: dead steps and unused inputs.
    match p.empty_clause() {
        None => {
            if opts.expect_refutation {
                r.emit(RP002, None, cap, || {
                    "no empty clause: the proof refutes nothing".into()
                });
            }
        }
        Some(root) => {
            let mut live = vec![false; p.len()];
            live[root.as_usize()] = true;
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                for &a in p.step(id).antecedents {
                    // Forward references were already reported; only
                    // well-formed backward edges are traversable.
                    if a.index() < id.index() && !live[a.as_usize()] {
                        live[a.as_usize()] = true;
                        stack.push(a);
                    }
                }
            }
            for (id, step) in p.iter() {
                if live[id.as_usize()] {
                    continue;
                }
                if step.is_original() {
                    r.emit(RP006, Some(Location::Step(id.index())), cap, || {
                        "input clause is never used by the refutation cone".into()
                    });
                } else {
                    r.emit(RP005, Some(Location::Step(id.index())), cap, || {
                        "derived step lies outside the empty clause's cone".into()
                    });
                }
            }
        }
    }

    lint_stitch_boundaries(p, opts, &mut r);

    if opts.chain {
        lint_chains(p, max_var, opts, &mut r);
    }
    r
}

/// Consistency of the parallel sweep's merge-cone stitch segments.
///
/// `boundaries[0]` is the proof length when the parallel sweep began;
/// each later entry is the length after one round's worker cones were
/// stitched in. Inside `[boundaries[0], boundaries.last())` every step
/// must be a *derived* stitch product (the Tseitin originals all precede
/// the sweep and the miter assertion follows it), and the empty clause —
/// derived by the final monolithic solve — must not fall inside a
/// segment.
fn lint_stitch_boundaries(p: &Proof, opts: &LintOptions, r: &mut Report) {
    let b = &opts.stitch_boundaries;
    if b.is_empty() {
        return;
    }
    let cap = opts.max_per_lint;
    let len = u32::try_from(p.len()).unwrap_or(u32::MAX);
    for w in b.windows(2) {
        if w[0] > w[1] {
            r.emit(RP007, None, cap, || {
                format!("stitch boundaries decrease: {} then {}", w[0], w[1])
            });
            return;
        }
    }
    let last = *b.last().expect("checked non-empty");
    if last > len {
        r.emit(RP007, None, cap, || {
            format!("stitch boundary {last} exceeds proof length {len}")
        });
        return;
    }
    for idx in b[0]..last {
        let id = ClauseId::new(idx);
        if p.step(id).is_original() {
            r.emit(RP007, Some(Location::Step(idx)), cap, || {
                "original clause recorded inside a parallel stitch segment".into()
            });
        }
    }
    if let Some(root) = p.empty_clause() {
        if root.index() >= b[0] && root.index() < last {
            r.emit(RP007, Some(Location::Step(root.index())), cap, || {
                "empty clause derived inside a stitch segment instead of the final solve".into()
            });
        }
    }
}

/// The chain-analysis pass (`RP1xx`); see the module docs.
fn lint_chains(p: &Proof, max_var: u32, opts: &LintOptions, r: &mut Report) {
    let cap = opts.max_per_lint;
    let nv = max_var as usize + 1;
    // Occurrence counters for the pivot-count analysis and presence bits
    // for the order replay, both cleared through touched lists so one
    // allocation serves every step.
    let mut count = vec![[0u32; 2]; nv];
    let mut counted: Vec<u32> = Vec::new();
    let mut present = vec![0u8; nv]; // bit 0: positive lit, bit 1: negative
    let mut marked: Vec<u32> = Vec::new();
    let mut pivot_seen = vec![false; nv];
    let mut pivots: Vec<u32> = Vec::new();

    'steps: for (id, step) in p.iter() {
        if step.is_original() {
            continue;
        }
        if step.antecedents.iter().any(|a| a.index() >= id.index()) {
            continue; // unanalyzable; RP001 already reported it
        }
        let recorded = step.clause;
        let needed = step.antecedents.len() - 1;

        // Pivot-count analysis (order-insensitive).
        for &a in step.antecedents {
            for &l in p.clause(a) {
                let v = l.var().as_usize();
                let c = &mut count[v];
                if c[0] == 0 && c[1] == 0 {
                    counted.push(v as u32);
                }
                c[usize::from(l.is_negative())] += 1;
            }
        }
        let mut clash_pairs = 0usize;
        for &v in &counted {
            let c = count[v as usize];
            clash_pairs += c[0].min(c[1]) as usize;
        }
        if clash_pairs < needed {
            r.emit(RP101, Some(Location::Step(id.index())), cap, || {
                format!(
                    "chain of {} antecedents needs {needed} resolutions but its clauses \
                     contain only {clash_pairs} clashing variable pairs",
                    step.antecedents.len()
                )
            });
            clear_counts(&mut count, &mut counted);
            continue;
        }
        for &v in &counted {
            let c = count[v as usize];
            let lone = if c[1] == 0 && c[0] > 0 {
                Some(cnf::Var::new(v).positive())
            } else if c[0] == 0 && c[1] > 0 {
                Some(cnf::Var::new(v).negative())
            } else {
                None
            };
            if let Some(l) = lone {
                if recorded.binary_search(&l).is_err() {
                    r.emit(RP102, Some(Location::Step(id.index())), cap, || {
                        format!(
                            "literal {} occurs in one polarity only (unresolvable) \
                             yet is missing from the recorded clause",
                            dimacs(l)
                        )
                    });
                    clear_counts(&mut count, &mut counted);
                    continue 'steps;
                }
            }
        }
        clear_counts(&mut count, &mut counted);

        // Order replay over the running resolvent as a literal set.
        for &l in p.clause(step.antecedents[0]) {
            mark(&mut present, &mut marked, l);
        }
        let mut replay_ok = true;
        for (position, &a) in step.antecedents.iter().enumerate().skip(1) {
            let clause = p.clause(a);
            let mut pivot: Option<Lit> = None;
            let mut ambiguous = false;
            for &l in clause {
                let v = l.var().as_usize();
                let opposite = 1u8 << usize::from(!l.is_negative());
                if present[v] & opposite != 0 {
                    if pivot.is_some() {
                        ambiguous = true;
                    } else {
                        pivot = Some(l);
                    }
                }
            }
            let Some(pl) = pivot else {
                r.emit(RP105, Some(Location::Step(id.index())), cap, || {
                    format!("antecedent {a} (chain position {position}) shares no clashing variable with the running resolvent")
                });
                replay_ok = false;
                break;
            };
            if ambiguous {
                r.emit(RP104, Some(Location::Step(id.index())), cap, || {
                    format!("antecedent {a} (chain position {position}) clashes with the running resolvent on more than one variable")
                });
                replay_ok = false;
                break;
            }
            let v = pl.var().as_usize();
            if pivot_seen[v] {
                r.emit(RP106, Some(Location::Step(id.index())), cap, || {
                    format!(
                        "irregular chain: pivot variable {} is resolved more than once",
                        pl.var().index() + 1
                    )
                });
            } else {
                pivot_seen[v] = true;
                pivots.push(v as u32);
            }
            present[v] &= !(1u8 << usize::from(!pl.is_negative()));
            for &l in clause {
                if l != pl {
                    mark(&mut present, &mut marked, l);
                }
            }
        }
        if replay_ok {
            'leftover: for &v in &marked {
                let bits = present[v as usize];
                for negated in [false, true] {
                    if bits & (1u8 << usize::from(negated)) != 0 {
                        let l = cnf::Var::new(v).lit(negated);
                        if recorded.binary_search(&l).is_err() {
                            r.emit(RP103, Some(Location::Step(id.index())), cap, || {
                                format!(
                                    "replaying the chain in recorded order leaves literal {} \
                                     which the recorded clause lacks",
                                    dimacs(l)
                                )
                            });
                            break 'leftover;
                        }
                    }
                }
            }
        }
        for &v in &marked {
            present[v as usize] = 0;
        }
        marked.clear();
        for &v in &pivots {
            pivot_seen[v as usize] = false;
        }
        pivots.clear();
    }
}

fn clear_counts(count: &mut [[u32; 2]], counted: &mut Vec<u32>) {
    for &v in counted.iter() {
        count[v as usize] = [0, 0];
    }
    counted.clear();
}

fn mark(present: &mut [u8], marked: &mut Vec<u32>, l: Lit) {
    let v = l.var().as_usize();
    if present[v] == 0 {
        marked.push(v as u32);
    }
    present[v] |= 1u8 << usize::from(l.is_negative());
}

fn dimacs(l: Lit) -> i32 {
    l.to_dimacs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn x(i: u32) -> Var {
        Var::new(i)
    }

    /// A minimal valid refutation of `(x∨y)(¬x∨y)(x∨¬y)(¬x∨¬y)`.
    fn refutation() -> Proof {
        let mut p = Proof::new();
        let c1 = p.add_original([x(0).positive(), x(1).positive()]);
        let c2 = p.add_original([x(0).negative(), x(1).positive()]);
        let c3 = p.add_original([x(0).positive(), x(1).negative()]);
        let c4 = p.add_original([x(0).negative(), x(1).negative()]);
        let py = p.add_derived([x(1).positive()], [c1, c2]);
        let ny = p.add_derived([x(1).negative()], [c3, c4]);
        p.add_derived([], [py, ny]);
        p
    }

    #[test]
    fn valid_refutation_is_clean() {
        let r = lint_proof(
            &refutation(),
            &LintOptions {
                expect_refutation: true,
                ..LintOptions::default()
            },
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        assert_eq!(r.counts().warnings, 0);
        assert_eq!(r.counts().infos, 0);
    }

    #[test]
    fn dead_steps_and_unused_inputs_are_info() {
        let mut p = refutation();
        p.add_original([x(5).positive()]); // never used
        let a = p.add_original([x(6).positive(), x(7).positive()]);
        let b = p.add_original([x(6).negative(), x(7).positive()]);
        p.add_derived([x(7).positive()], [a, b]); // dead derivation
        let r = lint_proof(&p, &LintOptions::default());
        assert!(r.is_clean());
        assert_eq!(r.total("RP005"), 1);
        assert_eq!(r.total("RP006"), 3);
    }

    #[test]
    fn missing_refutation_only_flagged_on_request() {
        let mut p = Proof::new();
        p.add_original([x(0).positive()]);
        assert!(lint_proof(&p, &LintOptions::default()).is_clean());
        let r = lint_proof(
            &p,
            &LintOptions {
                expect_refutation: true,
                ..LintOptions::default()
            },
        );
        assert!(r.has("RP002"));
        assert!(!r.is_clean());
    }

    #[test]
    fn duplicate_derivation_warns() {
        let mut p = Proof::new();
        let a = p.add_original([x(0).positive(), x(1).positive()]);
        let b = p.add_original([x(0).negative(), x(1).positive()]);
        p.add_derived([x(1).positive()], [a, b]);
        p.add_derived([x(1).positive()], [a, b]);
        let r = lint_proof(&p, &LintOptions::default());
        assert_eq!(r.total("RP004"), 1);
        assert!(r.is_clean()); // duplicates are waste, not defects
    }

    #[test]
    fn tautological_input_warns_but_derived_errors() {
        let mut p = Proof::new();
        let t = p.add_original([x(0).positive(), x(0).negative()]);
        let r = lint_proof(&p, &LintOptions::default());
        assert_eq!(r.total("RP003"), 1);
        assert!(r.is_clean());

        let mut p2 = Proof::new();
        let a = p2.add_original([x(0).positive(), x(1).positive()]);
        let _ = t;
        // A derived step whose *recorded clause* is tautological.
        let b = p2.add_original([x(0).negative(), x(1).negative()]);
        p2.add_derived([x(1).positive(), x(1).negative()], [a, b]);
        let r2 = lint_proof(&p2, &LintOptions::structural());
        assert_eq!(r2.total("RP003"), 1);
        assert!(!r2.is_clean());
    }

    #[test]
    fn dropped_antecedent_fails_pivot_count() {
        // x0, (¬x0∨x1), (¬x1∨x2), (¬x2∨x3) ⊢ x3 with the middle link
        // dropped: only k−2 clashing pairs remain for k−1 resolutions.
        let mut p = Proof::new();
        let u = p.add_original([x(0).positive()]);
        let l0 = p.add_original([x(0).negative(), x(1).positive()]);
        let _l1 = p.add_original([x(1).negative(), x(2).positive()]);
        let l2 = p.add_original([x(2).negative(), x(3).positive()]);
        p.add_derived([x(3).positive()], [u, l0, l2]);
        let r = lint_proof(&p, &LintOptions::default());
        assert!(r.has("RP101"), "{:?}", r.diagnostics());
        assert!(!r.has("RP103"));
        assert!(!r.has("RP104"));
    }

    #[test]
    fn swapped_chain_fails_order_replay() {
        let mut p = Proof::new();
        let a0 = p.add_original([x(0).positive(), x(1).positive()]);
        let l1 = p.add_original([x(0).negative(), x(1).positive()]);
        let l2 = p.add_original([x(1).negative(), x(2).positive()]);
        p.add_derived([x(2).positive()], [a0, l2, l1]);
        let r = lint_proof(&p, &LintOptions::default());
        assert!(r.has("RP103"), "{:?}", r.diagnostics());
        assert!(!r.has("RP101"));
        assert!(!r.has("RP104"));
    }

    #[test]
    fn flipped_literal_is_an_ambiguous_pivot() {
        let mut p = Proof::new();
        let a0 = p.add_original([x(0).positive(), x(1).positive()]);
        let l1 = p.add_original([x(0).negative(), x(1).negative()]);
        p.add_derived([x(1).positive()], [a0, l1]);
        let r = lint_proof(&p, &LintOptions::default());
        assert!(r.has("RP104"), "{:?}", r.diagnostics());
        assert!(!r.has("RP101"));
        assert!(!r.has("RP103"));
    }

    #[test]
    fn merging_chains_replay_cleanly() {
        // (a∨b) + (a∨¬b) → (a), then + (¬a) → (): occurrence counts are
        // asymmetric (a appears twice positively) but merging makes the
        // chain valid — the lint must not false-positive.
        let mut p = Proof::new();
        let c0 = p.add_original([x(0).positive(), x(1).positive()]);
        let c1 = p.add_original([x(0).positive(), x(1).negative()]);
        let c2 = p.add_original([x(0).negative()]);
        p.add_derived([], [c0, c1, c2]);
        let r = lint_proof(
            &p,
            &LintOptions {
                expect_refutation: true,
                ..LintOptions::default()
            },
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics());
    }

    #[test]
    fn weakening_steps_are_clean_but_bad_weakening_is_not() {
        let mut p = Proof::new();
        let a = p.add_original([x(0).positive()]);
        p.add_derived([x(0).positive(), x(1).positive()], [a]);
        assert!(lint_proof(&p, &LintOptions::default()).is_clean());

        // "Weakening" that loses the antecedent's literal is invalid.
        let mut q = Proof::new();
        let a = q.add_original([x(0).positive(), x(2).positive()]);
        q.add_derived([x(1).positive()], [a]);
        let r = lint_proof(&q, &LintOptions::default());
        assert!(r.has("RP102"), "{:?}", r.diagnostics());
    }

    #[test]
    fn irregular_chain_repeating_a_pivot_warns() {
        // Resolve on x0, reintroduce it, resolve on x0 again: valid but
        // irregular.
        let mut p = Proof::new();
        let c0 = p.add_original([x(0).positive(), x(1).positive()]);
        let c1 = p.add_original([x(0).negative(), x(2).positive()]);
        let c2 = p.add_original([x(2).negative(), x(0).positive()]);
        let c3 = p.add_original([x(0).negative(), x(3).positive()]);
        p.add_derived([x(1).positive(), x(3).positive()], [c0, c1, c2, c3]);
        let r = lint_proof(&p, &LintOptions::default());
        assert!(r.has("RP106"), "{:?}", r.diagnostics());
        assert!(r.is_clean()); // a warning, not an error
    }

    #[test]
    fn structural_pass_skips_chain_lints() {
        let mut p = Proof::new();
        let a0 = p.add_original([x(0).positive(), x(1).positive()]);
        let l1 = p.add_original([x(0).negative(), x(1).negative()]);
        p.add_derived([x(1).positive()], [a0, l1]);
        let r = lint_proof(&p, &LintOptions::structural());
        assert!(!r.has("RP104"));
        assert!(r.is_clean());
    }

    #[test]
    fn stitch_boundary_violations_are_flagged() {
        let p = refutation();
        // Boundaries claiming the two derived steps (4, 5) plus the
        // *original* step 3 were stitched: step 3 violates the segment.
        let opts = LintOptions {
            stitch_boundaries: vec![3, 6],
            ..LintOptions::default()
        };
        let r = lint_proof(&p, &opts);
        assert!(r.has("RP007"), "{:?}", r.diagnostics());

        // A segment covering only derived sweep steps is consistent.
        let opts = LintOptions {
            stitch_boundaries: vec![4, 6],
            ..LintOptions::default()
        };
        assert!(lint_proof(&p, &opts).is_clean());

        // Decreasing or out-of-range boundaries are themselves defects.
        for bad in [vec![5, 4], vec![4, 99]] {
            let opts = LintOptions {
                stitch_boundaries: bad,
                ..LintOptions::default()
            };
            assert!(lint_proof(&p, &opts).has("RP007"));
        }
    }

    #[test]
    fn empty_clause_inside_segment_is_flagged() {
        let p = refutation(); // empty clause is step 6
        let opts = LintOptions {
            stitch_boundaries: vec![4, 7],
            ..LintOptions::default()
        };
        assert!(lint_proof(&p, &opts).has("RP007"));
    }
}
