//! Lints for And-Inverter Graph netlists (`AGxxx`).

use crate::{Artifact, LintOptions, Location, Report, AG001, AG002, AG003, AG004};
use aig::{Aig, Node};
use std::collections::HashMap;

/// Lints an AIG: AND nodes outside every output cone ([`AG001`]),
/// duplicate AND gates a structural-hashing pass would merge
/// ([`AG002`]), constant-propagatable gates ([`AG003`]), and primary
/// inputs that feed no output ([`AG004`]).
///
/// Graphs built through [`Aig::and`] are hashed and folded on
/// construction, so `AG002`/`AG003` fire only on netlists read from
/// files or built with [`Aig::and_unshared`] — exactly the external
/// artifacts `rplint` is for.
pub fn lint_aig(g: &Aig, opts: &LintOptions) -> Report {
    let mut r = Report::new(Artifact::Aig);
    let cap = opts.max_per_lint;

    // Backward reachability from the outputs. Fanins always precede
    // their gates, so one reverse sweep settles the whole graph.
    let mut live = vec![false; g.len()];
    for o in g.outputs() {
        live[o.node().as_usize()] = true;
    }
    for id in (0..g.len() as u32).rev() {
        let id = aig::NodeId::new(id);
        if !live[id.as_usize()] {
            continue;
        }
        if let Some((a, b)) = g.node(id).fanins() {
            live[a.node().as_usize()] = true;
            live[b.node().as_usize()] = true;
        }
    }

    let mut seen: HashMap<(u32, u32), aig::NodeId> = HashMap::new();
    for (id, node) in g.iter() {
        match *node {
            Node::Const => {}
            Node::Input { .. } => {
                if !live[id.as_usize()] {
                    r.emit(AG004, Some(Location::Node(id.index())), cap, || {
                        "primary input feeds no output cone".into()
                    });
                }
            }
            Node::And { a, b } => {
                if !live[id.as_usize()] {
                    r.emit(AG001, Some(Location::Node(id.index())), cap, || {
                        "AND node is not in the fanin cone of any output".into()
                    });
                }
                if a.is_const() || b.is_const() {
                    r.emit(AG003, Some(Location::Node(id.index())), cap, || {
                        "AND gate has a constant fanin".into()
                    });
                } else if a.node() == b.node() {
                    r.emit(AG003, Some(Location::Node(id.index())), cap, || {
                        let what = if a == b {
                            "identical fanins (x AND x = x)"
                        } else {
                            "opposed fanins (x AND NOT x = false)"
                        };
                        format!("AND gate has {what}")
                    });
                }
                // Fanins are normalized (a.raw() <= b.raw()) on
                // construction, so the raw pair is a canonical key.
                let key = if a.raw() <= b.raw() {
                    (a.raw(), b.raw())
                } else {
                    (b.raw(), a.raw())
                };
                match seen.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let first = *e.get();
                        r.emit(AG002, Some(Location::Node(id.index())), cap, || {
                            format!(
                                "AND gate duplicates node n{} (same fanin pair; \
                                 structural hashing would merge them)",
                                first.index()
                            )
                        });
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(id);
                    }
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_graph_is_clean() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let f = g.xor(x, y);
        g.add_output(f);
        let r = lint_aig(&g, &LintOptions::default());
        assert!(r.is_clean());
        assert_eq!(r.counts().warnings, 0);
        assert_eq!(r.counts().infos, 0);
    }

    #[test]
    fn dangling_and_and_unused_input() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let _dangling = g.and_unshared(x, y);
        g.add_output(x);
        let r = lint_aig(&g, &LintOptions::default());
        assert_eq!(r.total("AG001"), 1);
        assert_eq!(r.total("AG004"), 1, "{:?}", r.diagnostics());
        let _ = y;
    }

    #[test]
    fn duplicate_and_constant_gates() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let a = g.and_raw(x, y);
        let b = g.and_raw(x, y);
        let c = g.and_raw(x, aig::Lit::TRUE);
        let d = g.and_raw(x, !x);
        let e = g.and_raw(a, b);
        let f = g.and_raw(c, d);
        let all = g.and_raw(e, f);
        g.add_output(all);
        let r = lint_aig(&g, &LintOptions::default());
        assert_eq!(r.total("AG002"), 1);
        assert_eq!(r.total("AG003"), 2);
    }
}
