//! Lenient TraceCheck front-end.
//!
//! [`proof::import::read_tracecheck`] is strict: the first grammar or
//! reference violation aborts the whole read, which is the right call
//! for a checker but useless for triage — the defects the importer
//! rejects (forward references, id gaps) are exactly the ones a lint
//! pass should *report*. This scanner mirrors the importer's grammar but
//! turns every violation into a diagnostic ([`RP008`] for grammar,
//! [`RP009`] for id order, [`RP001`] for bad references) and keeps
//! going. When the file level is clean, the steps are loaded into a
//! [`proof::Proof`] and the full [`crate::lint_proof`] pass runs on top.

use crate::{Artifact, LintOptions, Location, Report, RP001, RP008, RP009};
use cnf::Lit;
use proof::{ClauseId, Proof};
use std::io::{self, BufRead};
use std::num::NonZeroI32;

/// Lints a TraceCheck file. File-level defects become diagnostics; if
/// there are none, the parsed proof additionally goes through
/// [`crate::lint_proof`] with the same options.
///
/// # Errors
///
/// Forwards I/O errors from `r`; *format* problems never error, they
/// are reported in the returned [`Report`].
pub fn lint_tracecheck<R: BufRead>(r: R, opts: &LintOptions) -> io::Result<Report> {
    let (mut report, proof) = read_tracecheck(r, opts)?;
    if let Some(p) = proof {
        report.absorb(crate::lint_proof(&p, opts));
    }
    Ok(report)
}

/// Leniently reads a TraceCheck file, reporting file-level defects as
/// diagnostics. Returns the parsed [`Proof`] when the file level was
/// clean enough to load (no grammar errors, no bad references), and
/// `None` otherwise. Unlike [`lint_tracecheck`], the proof-level lint
/// pass does *not* run — callers that want a [`Proof`] to operate on
/// (bundle linting, `--fix`) use this entry point.
///
/// # Errors
///
/// Forwards I/O errors from `r`; *format* problems never error, they
/// are reported in the returned [`Report`].
pub fn read_tracecheck<R: BufRead>(
    r: R,
    opts: &LintOptions,
) -> io::Result<(Report, Option<Proof>)> {
    let mut report = Report::new(Artifact::Proof);
    let cap = opts.max_per_lint;
    let mut steps: Vec<(Vec<Lit>, Vec<ClauseId>)> = Vec::new();
    let mut expected: u64 = 1;
    let mut file_ok = true;

    for (line_no, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let here = Some(Location::Line(line_no as u32 + 1));
        let mut tokens = line.split_whitespace();
        let Some(id_tok) = tokens.next() else {
            continue;
        };
        let id: u64 = match id_tok.parse() {
            Ok(id) if id >= 1 => id,
            _ => {
                report.emit(RP008, here, cap, || format!("bad step id `{id_tok}`"));
                file_ok = false;
                continue;
            }
        };
        if id != expected {
            report.emit(RP009, here, cap, || {
                format!("expected step id {expected}, found {id}")
            });
            file_ok = false;
        }
        // Count the step under its *declared* id so later antecedent
        // references still resolve the way the author intended.
        expected = id + 1;

        let mut lits: Vec<Lit> = Vec::new();
        let mut ants: Vec<ClauseId> = Vec::new();
        let mut bad_line = false;
        let mut saw_zero = false;
        for tok in tokens.by_ref() {
            match tok.parse::<i32>().ok().map(NonZeroI32::new) {
                Some(None) => {
                    saw_zero = true;
                    break;
                }
                Some(Some(nz)) => lits.push(Lit::from_dimacs(nz)),
                None => {
                    report.emit(RP008, here, cap, || format!("bad literal `{tok}`"));
                    bad_line = true;
                    break;
                }
            }
        }
        if !bad_line && !saw_zero {
            report.emit(RP008, here, cap, || "clause not terminated by 0".into());
            bad_line = true;
        }
        if !bad_line {
            saw_zero = false;
            for tok in tokens.by_ref() {
                let v: i64 = match tok.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        report.emit(RP008, here, cap, || format!("bad antecedent `{tok}`"));
                        bad_line = true;
                        break;
                    }
                };
                if v == 0 {
                    saw_zero = true;
                    break;
                }
                if v < 1 || v as u64 >= id {
                    let what = if v as u64 == id {
                        "itself"
                    } else if v >= 1 {
                        "a later step"
                    } else {
                        "a nonexistent step"
                    };
                    report.emit(RP001, here, cap, || {
                        format!("step {id} cites {what} (antecedent {v})")
                    });
                    file_ok = false;
                } else {
                    ants.push(ClauseId::new((v - 1) as u32));
                }
            }
            if !bad_line && !saw_zero {
                report.emit(RP008, here, cap, || {
                    "antecedent list not terminated by 0".into()
                });
                bad_line = true;
            }
            if !bad_line && tokens.next().is_some() {
                report.emit(RP008, here, cap, || {
                    "trailing tokens after antecedent terminator".into()
                });
                bad_line = true;
            }
        }
        if bad_line {
            file_ok = false;
        } else {
            steps.push((lits, ants));
        }
    }

    let proof = file_ok.then(|| {
        let mut p = Proof::new();
        for (lits, ants) in steps {
            if ants.is_empty() {
                p.add_original(lits);
            } else {
                p.add_derived(lits, ants);
            }
        }
        p
    });
    Ok((report, proof))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Report {
        lint_tracecheck(text.as_bytes(), &LintOptions::default()).unwrap()
    }

    #[test]
    fn clean_refutation_passes_both_levels() {
        let r = lint("1 1 0 0\n2 -1 0 0\n3 0 1 2 0\n");
        assert!(r.is_clean(), "{:?}", r.diagnostics());
    }

    #[test]
    fn forward_and_self_references_are_rp001() {
        let r = lint("1 1 0 0\n2 2 0 0\n3 1 0 5 2 0\n");
        assert!(r.has("RP001"), "{:?}", r.diagnostics());
        assert!(!r.has("RP008"));
        let r = lint("1 1 0 0\n2 -1 0 2 0\n");
        assert!(r.has("RP001"));
    }

    #[test]
    fn id_gaps_are_rp009_not_fatal() {
        let r = lint("1 1 0 0\n3 -1 0 0\n");
        assert!(r.has("RP009"));
        assert_eq!(r.counts().errors, 1, "{:?}", r.diagnostics());
    }

    #[test]
    fn grammar_violations_are_rp008() {
        assert!(lint("1 1 0\n").has("RP008"));
        assert!(lint("1 1\n").has("RP008"));
        assert!(lint("1 1 0 0 7\n").has("RP008"));
        assert!(lint("x 1 0 0\n").has("RP008"));
        assert!(lint("1 zap 0 0\n").has("RP008"));
        assert!(lint("1 1 0 zap 0\n").has("RP008"));
    }

    #[test]
    fn proof_level_lints_run_when_file_is_clean() {
        // Valid grammar, but the chain (1∨2) + (¬1∨¬2) ⊢ (2) has two
        // clashing pivots.
        let r = lint("1 1 2 0 0\n2 -1 -2 0 0\n3 2 0 1 2 0\n");
        assert!(r.has("RP104"), "{:?}", r.diagnostics());
    }

    #[test]
    fn proof_level_lints_skipped_when_file_is_broken() {
        // The forward reference would make in-memory proof construction
        // unsound, so only file-level diagnostics appear.
        let r = lint("1 1 0 0\n2 -1 0 3 0\n3 0 1 2 0\n");
        assert!(r.has("RP001"));
        assert!(!r.has("RP005"));
    }

    #[test]
    fn io_errors_propagate() {
        struct Broken;
        impl io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
        }
        impl BufRead for Broken {
            fn fill_buf(&mut self) -> io::Result<&[u8]> {
                Err(io::Error::other("boom"))
            }
            fn consume(&mut self, _: usize) {}
        }
        assert!(lint_tracecheck(Broken, &LintOptions::default()).is_err());
    }
}
