//! Static analysis for the proof-producing CEC pipeline.
//!
//! Where `proof::check` *replays* every resolution chain literally, this
//! crate inspects the **structure** of an artifact — a resolution proof,
//! a CNF formula, or an AIG netlist — and reports defects as
//! [`Diagnostic`]s with stable codes and severities, the way a compiler
//! lints source code. Structure-only passes are far cheaper than replay
//! and localize problems (``error[RP101] step c42: …``) instead of
//! failing with a single opaque verdict, which makes them the right
//! first tool when triaging a corrupted or hand-edited proof.
//!
//! Entry points, one per artifact kind plus one cross-artifact pass:
//!
//! - [`lint_proof`] — a [`proof::Proof`] already in memory;
//! - [`lint_tracecheck`] — a TraceCheck file, parsed leniently so that
//!   defects the strict importer rejects (forward references, id-order
//!   violations) surface as diagnostics rather than hard errors;
//! - [`lint_cnf`] / [`lint_aig`] — DIMACS formulas and AIG netlists;
//! - [`lint_drat`] — a DRAT clausal proof file, optionally checked
//!   against the formula it refutes;
//! - [`lint_journal`] — a durability run-state journal (checksummed
//!   JSONL), triaged leniently so a crashed run's journal reads as
//!   healthy-but-unfinished while real corruption gets an error;
//! - [`lint_bundle`] — the *cross-artifact* pass: an AIG, its Tseitin
//!   CNF, the recorded proof, and the certificate metadata together,
//!   checking that each layer actually binds to the next.
//!
//! [`fix_proof`] complements the read-only passes: it mechanically
//! repairs what the proof lints report (duplicate derivations, dead
//! steps, unreferenced tautologies) and is idempotent by construction.
//!
//! Every lint is registered in [`REGISTRY`] with a stable code (`RPxxx`
//! for proofs, `CFxxx` for CNF, `AGxxx` for AIG, `XBxxx` for bundles,
//! `DRxxx` for DRAT files, `JNxxx` for journals). Codes in the `RP1xx` range perform *chain
//! analysis* — they gather antecedent clause literals — while `RP0xx`
//! codes are purely structural; the [`LintOptions::chain`] switch
//! selects between the fast structural pass and the full set (for DRAT
//! it gates the expensive RUP replay of `DR002`). Reports render as
//! text or JSON.

#![warn(missing_docs)]

mod aig_lints;
mod bundle_lints;
mod cnf_lints;
mod drat;
mod fix;
mod journal_lints;
mod proof_lints;
mod trace;

pub use aig_lints::lint_aig;
pub use bundle_lints::{lint_bundle, Bundle, CertificateInfo};
pub use cnf_lints::lint_cnf;
pub use drat::lint_drat;
pub use fix::{fix_proof, FixResult, FixSummary};
pub use journal_lints::lint_journal;
pub use proof_lints::lint_proof;
pub use trace::{lint_tracecheck, read_tracecheck};

use std::fmt;
use std::io::{self, Write};

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: expected in healthy artifacts (e.g. dead proof
    /// steps before trimming) but worth surfacing.
    Info,
    /// Suspicious: sound but wasteful or fragile (duplicate
    /// derivations, dangling AIG nodes).
    Warn,
    /// The artifact is defective: a checker or consumer will reject it.
    Error,
}

impl Severity {
    /// Lower-case label, as printed in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The kind of artifact a lint (or report) applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// A resolution proof (in memory or as a TraceCheck file).
    Proof,
    /// A CNF formula.
    Cnf,
    /// An And-Inverter Graph netlist.
    Aig,
    /// A cross-artifact certification bundle (AIG + CNF + proof +
    /// certificate metadata, any subset of which may be present).
    Bundle,
    /// A DRAT clausal proof file.
    Drat,
    /// A durability run-state journal (checksummed JSONL).
    Journal,
    /// A static hardness-analysis report over an instance (AIG and/or
    /// CNF). Analysis lints are advisory scheduling signals, not
    /// soundness findings.
    Analysis,
}

impl Artifact {
    /// Lower-case label, as printed in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Artifact::Proof => "proof",
            Artifact::Cnf => "cnf",
            Artifact::Aig => "aig",
            Artifact::Bundle => "bundle",
            Artifact::Drat => "drat",
            Artifact::Journal => "journal",
            Artifact::Analysis => "analysis",
        }
    }
}

/// A registered lint: stable code, human name, default severity.
#[derive(Debug)]
pub struct Lint {
    /// Stable code, e.g. `"RP001"`. Never reused once published.
    pub code: &'static str,
    /// Short kebab-case name, e.g. `"forward-reference"`.
    pub name: &'static str,
    /// Default severity of this lint's diagnostics.
    pub severity: Severity,
    /// Artifact kind this lint inspects.
    pub artifact: Artifact,
    /// Whether the lint gathers antecedent clause literals (chain
    /// analysis, `RP1xx`) rather than step metadata only. Chain lints
    /// are skipped by the fast structural pass.
    pub chain: bool,
    /// One-line description, shown by `rplint --list`.
    pub summary: &'static str,
}

macro_rules! lints {
    ($($ident:ident = ($code:literal, $name:literal, $sev:ident, $artifact:ident, $chain:literal, $summary:literal);)*) => {
        $(
            #[doc = $summary]
            pub const $ident: &Lint = &Lint {
                code: $code,
                name: $name,
                severity: Severity::$sev,
                artifact: Artifact::$artifact,
                chain: $chain,
                summary: $summary,
            };
        )*
        /// Every registered lint, in code order.
        pub const REGISTRY: &[&Lint] = &[$($ident),*];
    };
}

lints! {
    RP001 = ("RP001", "forward-reference", Error, Proof, false,
        "a derived step cites itself, a later step, or an undefined step");
    RP002 = ("RP002", "no-refutation", Error, Proof, false,
        "the proof claims to refute but contains no empty clause");
    RP003 = ("RP003", "tautological-clause", Error, Proof, false,
        "a recorded clause contains a variable in both polarities");
    RP004 = ("RP004", "duplicate-derivation", Warn, Proof, false,
        "a derived clause repeats an earlier step's clause verbatim");
    RP005 = ("RP005", "dead-step", Info, Proof, false,
        "a derived step lies outside the empty clause's antecedent cone");
    RP006 = ("RP006", "unused-input", Info, Proof, false,
        "an input clause is never used by the refutation cone");
    RP007 = ("RP007", "stitch-boundary", Error, Proof, false,
        "a parallel merge-cone stitch segment is inconsistent");
    RP008 = ("RP008", "parse-error", Error, Proof, false,
        "the TraceCheck file violates the step grammar");
    RP009 = ("RP009", "id-order", Error, Proof, false,
        "TraceCheck step ids are not the dense sequence 1, 2, 3, …");
    RP101 = ("RP101", "chain-pivot-count", Error, Proof, true,
        "an antecedent chain has fewer clashing variable pairs than resolutions");
    RP102 = ("RP102", "unresolvable-literal", Error, Proof, true,
        "a literal no resolution can cancel is missing from the recorded clause");
    RP103 = ("RP103", "chain-order", Error, Proof, true,
        "replaying the chain in its recorded order keeps a literal the recorded clause lacks");
    RP104 = ("RP104", "ambiguous-pivot", Error, Proof, true,
        "an antecedent clashes with the running resolvent on more than one variable");
    RP105 = ("RP105", "missing-pivot", Error, Proof, true,
        "an antecedent shares no clashing variable with the running resolvent");
    RP106 = ("RP106", "irregular-chain", Warn, Proof, true,
        "a chain resolves on the same pivot variable more than once");
    CF001 = ("CF001", "unused-variable", Warn, Cnf, false,
        "a variable inside the declared range occurs in no clause");
    CF002 = ("CF002", "duplicate-clause", Warn, Cnf, false,
        "a clause repeats an earlier clause verbatim (up to literal order)");
    CF003 = ("CF003", "tautological-clause", Warn, Cnf, false,
        "a clause contains a variable in both polarities");
    CF004 = ("CF004", "variable-gap", Info, Cnf, false,
        "a contiguous run of declared variables is entirely unused (Tseitin range gap)");
    AG001 = ("AG001", "dangling-node", Warn, Aig, false,
        "an AND node is not in the fanin cone of any output");
    AG002 = ("AG002", "duplicate-and", Warn, Aig, false,
        "two AND nodes have the same normalized fanin pair (missed structural hashing)");
    AG003 = ("AG003", "constant-and", Warn, Aig, false,
        "an AND gate is constant-propagatable (constant or repeated/opposed fanins)");
    AG004 = ("AG004", "unused-input", Info, Aig, false,
        "a primary input feeds no output cone");
    XB001 = ("XB001", "variable-map", Error, Bundle, false,
        "the CNF's variable range cannot host the AIG's node-to-variable map");
    XB002 = ("XB002", "missing-gate-clause", Error, Bundle, false,
        "a Tseitin definition clause of an AND gate is absent from the CNF");
    XB003 = ("XB003", "corrupt-gate-clause", Error, Bundle, false,
        "a CNF clause matches a gate definition's variables but not its polarities");
    XB004 = ("XB004", "unexplained-clause", Warn, Bundle, false,
        "a non-unit CNF clause corresponds to no Tseitin definition clause");
    XB005 = ("XB005", "foreign-input-clause", Error, Bundle, false,
        "a proof input step's clause occurs nowhere in the CNF");
    XB006 = ("XB006", "input-near-miss", Error, Bundle, false,
        "a proof input step matches a CNF clause's variables but not its polarities");
    XB007 = ("XB007", "certificate-empty-clause", Error, Bundle, false,
        "the certificate's empty-clause step id disagrees with the proof");
    XB008 = ("XB008", "certificate-boundaries", Error, Bundle, false,
        "the certificate's stitch boundaries are inconsistent with its rounds or the proof");
    XB009 = ("XB009", "certificate-stats", Error, Bundle, false,
        "the certificate's step counts disagree with the proof");
    XB010 = ("XB010", "artifact-hash", Error, Bundle, false,
        "a bundle artifact's content hash disagrees with the manifest");
    XB011 = ("XB011", "manifest", Error, Bundle, false,
        "the bundle manifest is missing, malformed, or names absent files");
    DR001 = ("DR001", "parse-error", Error, Drat, false,
        "the DRAT file violates the clause-line grammar");
    DR002 = ("DR002", "non-rup-addition", Error, Drat, true,
        "an added clause is not a reverse-unit-propagation consequence of the accumulated formula");
    DR003 = ("DR003", "delete-unknown-clause", Warn, Drat, false,
        "a deletion names a clause that is neither in the formula nor currently added");
    DR004 = ("DR004", "duplicate-addition", Warn, Drat, false,
        "an added clause is already active verbatim (up to literal order)");
    DR005 = ("DR005", "no-refutation", Error, Drat, false,
        "the DRAT file claims to refute but never adds the empty clause");
    JN001 = ("JN001", "parse-error", Error, Journal, false,
        "a journal line is not a well-formed record (JSON damage or unknown record type)");
    JN002 = ("JN002", "checksum-mismatch", Error, Journal, false,
        "a record's body does not hash to its recorded checksum");
    JN003 = ("JN003", "sequence-gap", Error, Journal, false,
        "record sequence numbers are not the dense sequence 0, 1, 2, …");
    JN004 = ("JN004", "missing-header", Error, Journal, false,
        "the journal does not begin with a header record");
    JN005 = ("JN005", "truncated-tail", Warn, Journal, false,
        "the final line is torn (incomplete write) — consistent with a crash mid-record");
    JN006 = ("JN006", "no-verdict", Info, Journal, false,
        "the journal records no verdict — the run has not (yet) completed");
    JN007 = ("JN007", "duplicate-header", Error, Journal, false,
        "a header record appears after the first record");
    AN001 = ("AN001", "deep-xor-chain", Info, Analysis, false,
        "a long XOR chain (carry-save / parity reduction structure) dominates a cone");
    AN002 = ("AN002", "carry-chain", Info, Analysis, false,
        "a majority/carry chain was detected — adder-like ripple datapath");
    AN003 = ("AN003", "multiplier-grid", Warn, Analysis, false,
        "multiplier-like array of full-adder cells — expect hard SAT sweeping");
    AN004 = ("AN004", "high-fanout", Info, Analysis, false,
        "a node's fanout is extreme relative to the graph size");
    AN005 = ("AN005", "wide-frontier", Info, Analysis, false,
        "the topological cut frontier is wide relative to the circuit size");
    AN006 = ("AN006", "dense-vig", Info, Analysis, false,
        "the CNF variable-incidence graph is unusually dense");
    AN007 = ("AN007", "low-modularity", Info, Analysis, false,
        "the community-modularity proxy is low — the instance partitions poorly");
    AN008 = ("AN008", "hard-instance", Warn, Analysis, false,
        "the combined static hardness score marks this instance as hard");
    AN009 = ("AN009", "easy-instance", Info, Analysis, false,
        "the combined static hardness score marks this instance as easy (BDD/structural-friendly)");
}

/// Looks up a lint by its stable code (e.g. `"RP101"`).
pub fn find(code: &str) -> Option<&'static Lint> {
    REGISTRY.iter().find(|l| l.code == code).copied()
}

/// Where in the artifact a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// A proof step (0-based step index, printed as `c<n>` like
    /// [`proof::ClauseId`]).
    Step(u32),
    /// A CNF or proof variable (0-based).
    Var(u32),
    /// A CNF clause (0-based position in the formula).
    Clause(u32),
    /// An AIG node.
    Node(u32),
    /// A line of an input file (1-based).
    Line(u32),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Step(i) => write!(f, "step c{i}"),
            Location::Var(v) => write!(f, "var {}", v + 1),
            Location::Clause(c) => write!(f, "clause {c}"),
            Location::Node(n) => write!(f, "node n{n}"),
            Location::Line(l) => write!(f, "line {l}"),
        }
    }
}

/// One finding: a lint, a severity, an optional anchor, and a message.
#[derive(Debug)]
pub struct Diagnostic {
    /// The lint that produced this finding.
    pub lint: &'static Lint,
    /// Severity (usually the lint's default; tautological *input*
    /// clauses, for example, downgrade to a warning).
    pub severity: Severity,
    /// Anchor inside the artifact, when one exists.
    pub location: Option<Location>,
    /// Human-readable explanation.
    pub message: String,
}

/// Aggregated diagnostic counts by severity, cheap to embed in engine
/// statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintCounts {
    /// Number of error-severity diagnostics.
    pub errors: usize,
    /// Number of warning-severity diagnostics.
    pub warnings: usize,
    /// Number of info-severity diagnostics.
    pub infos: usize,
}

impl LintCounts {
    /// True when no error-severity diagnostic was recorded.
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }
}

impl fmt::Display for LintCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} errors, {} warnings, {} infos",
            self.errors, self.warnings, self.infos
        )
    }
}

/// Knobs for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Run the chain-analysis lints (`RP1xx`), which gather antecedent
    /// clause literals per derived step. `false` selects the fast
    /// structural-only pass.
    pub chain: bool,
    /// Require the proof to contain an empty clause ([`RP002`]).
    pub expect_refutation: bool,
    /// Proof lengths recorded around the parallel sweep: the length
    /// when stitching began, then after each round's merge. Enables the
    /// [`RP007`] stitch-boundary consistency lint.
    pub stitch_boundaries: Vec<u32>,
    /// Materialized diagnostics per lint; further findings are still
    /// *counted* but carry no message (shown as "N total" in output).
    pub max_per_lint: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            chain: true,
            expect_refutation: false,
            stitch_boundaries: Vec::new(),
            max_per_lint: 20,
        }
    }
}

impl LintOptions {
    /// The fast structural-only configuration: every lint that does not
    /// gather antecedent chain literals.
    pub fn structural() -> Self {
        LintOptions {
            chain: false,
            ..LintOptions::default()
        }
    }
}

/// Per-lint tally inside a [`Report`].
#[derive(Debug)]
struct LintTally {
    lint: &'static Lint,
    total: usize,
    shown: usize,
}

/// The outcome of linting one artifact: materialized diagnostics plus
/// complete per-lint and per-severity tallies (diagnostics beyond
/// [`LintOptions::max_per_lint`] are counted but not materialized).
#[derive(Debug)]
pub struct Report {
    /// What kind of artifact was linted.
    pub artifact: Artifact,
    diags: Vec<Diagnostic>,
    tallies: Vec<LintTally>,
    counts: LintCounts,
}

impl Report {
    /// An empty report for the given artifact kind.
    pub fn new(artifact: Artifact) -> Self {
        Report {
            artifact,
            diags: Vec::new(),
            tallies: Vec::new(),
            counts: LintCounts::default(),
        }
    }

    /// Records a finding at the lint's default severity. The message
    /// closure runs only if the finding is materialized (under `cap`).
    pub fn emit(
        &mut self,
        lint: &'static Lint,
        location: Option<Location>,
        cap: usize,
        message: impl FnOnce() -> String,
    ) {
        self.emit_severity(lint, lint.severity, location, cap, message);
    }

    /// Records a finding with an explicit severity override.
    pub fn emit_severity(
        &mut self,
        lint: &'static Lint,
        severity: Severity,
        location: Option<Location>,
        cap: usize,
        message: impl FnOnce() -> String,
    ) {
        match severity {
            Severity::Error => self.counts.errors += 1,
            Severity::Warn => self.counts.warnings += 1,
            Severity::Info => self.counts.infos += 1,
        }
        let tally = match self.tallies.iter_mut().find(|t| t.lint.code == lint.code) {
            Some(t) => t,
            None => {
                self.tallies.push(LintTally {
                    lint,
                    total: 0,
                    shown: 0,
                });
                self.tallies.last_mut().expect("just pushed")
            }
        };
        tally.total += 1;
        if tally.shown < cap {
            tally.shown += 1;
            self.diags.push(Diagnostic {
                lint,
                severity,
                location,
                message: message(),
            });
        }
    }

    /// The materialized diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Complete per-severity tallies (including unmaterialized findings).
    pub fn counts(&self) -> LintCounts {
        self.counts
    }

    /// Total findings for one lint code, materialized or not.
    pub fn total(&self, code: &str) -> usize {
        self.tallies
            .iter()
            .find(|t| t.lint.code == code)
            .map_or(0, |t| t.total)
    }

    /// Whether any finding with this lint code was recorded.
    pub fn has(&self, code: &str) -> bool {
        self.total(code) > 0
    }

    /// True when no error-severity finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.counts.is_clean()
    }

    /// Folds another report's findings into this one (used by the
    /// TraceCheck front-end to combine file-level and proof-level
    /// passes).
    pub fn absorb(&mut self, other: Report) {
        self.counts.errors += other.counts.errors;
        self.counts.warnings += other.counts.warnings;
        self.counts.infos += other.counts.infos;
        for t in other.tallies {
            match self
                .tallies
                .iter_mut()
                .find(|mine| mine.lint.code == t.lint.code)
            {
                Some(mine) => {
                    mine.total += t.total;
                    mine.shown += t.shown;
                }
                None => self.tallies.push(t),
            }
        }
        self.diags.extend(other.diags);
    }

    /// Renders the report as human-readable text: one line per
    /// materialized diagnostic, per-lint totals for truncated lints,
    /// and a summary line.
    ///
    /// # Errors
    ///
    /// Forwards I/O errors from `w`.
    pub fn write_text(&self, w: &mut impl Write) -> io::Result<()> {
        for d in &self.diags {
            match d.location {
                Some(loc) => writeln!(
                    w,
                    "{}[{}] {}: {}",
                    d.severity.label(),
                    d.lint.code,
                    loc,
                    d.message
                )?,
                None => writeln!(w, "{}[{}] {}", d.severity.label(), d.lint.code, d.message)?,
            }
        }
        for t in &self.tallies {
            if t.total > t.shown {
                writeln!(
                    w,
                    "{}[{}] {}: {} findings total ({} shown)",
                    t.lint.severity.label(),
                    t.lint.code,
                    t.lint.name,
                    t.total,
                    t.shown
                )?;
            }
        }
        writeln!(w, "{}: {}", self.artifact.label(), self.counts)
    }

    /// Renders the report as a single JSON object (schema documented in
    /// DESIGN.md).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.diags.len() * 96);
        s.push_str("{\"artifact\":\"");
        s.push_str(self.artifact.label());
        s.push_str("\",\"summary\":{\"errors\":");
        s.push_str(&self.counts.errors.to_string());
        s.push_str(",\"warnings\":");
        s.push_str(&self.counts.warnings.to_string());
        s.push_str(",\"infos\":");
        s.push_str(&self.counts.infos.to_string());
        s.push_str("},\"lints\":[");
        for (i, t) in self.tallies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"code\":\"");
            s.push_str(t.lint.code);
            s.push_str("\",\"name\":\"");
            s.push_str(t.lint.name);
            s.push_str("\",\"total\":");
            s.push_str(&t.total.to_string());
            s.push_str(",\"shown\":");
            s.push_str(&t.shown.to_string());
            s.push('}');
        }
        s.push_str("],\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"code\":\"");
            s.push_str(d.lint.code);
            s.push_str("\",\"name\":\"");
            s.push_str(d.lint.name);
            s.push_str("\",\"severity\":\"");
            s.push_str(d.severity.label());
            s.push('"');
            if let Some(loc) = d.location {
                s.push_str(",\"location\":");
                let (kind, index) = match loc {
                    Location::Step(i) => ("step", i),
                    Location::Var(i) => ("var", i),
                    Location::Clause(i) => ("clause", i),
                    Location::Node(i) => ("node", i),
                    Location::Line(i) => ("line", i),
                };
                s.push_str("{\"kind\":\"");
                s.push_str(kind);
                s.push_str("\",\"index\":");
                s.push_str(&index.to_string());
                s.push('}');
            }
            s.push_str(",\"message\":\"");
            json_escape_into(&d.message, &mut s);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }
}

/// Sorts by literal code and removes duplicates — the normal form used
/// for clause comparisons across artifacts (matches how
/// [`proof::Proof`] stores step clauses).
pub(crate) fn normalize_clause(mut lits: Vec<cnf::Lit>) -> Vec<cnf::Lit> {
    lits.sort_unstable_by_key(|l| l.code());
    lits.dedup();
    lits
}

/// The sorted, deduplicated variable indices of a normalized clause —
/// the key used for polarity-blind near-miss matching.
pub(crate) fn clause_vars(sorted: &[cnf::Lit]) -> Vec<u32> {
    let mut vars: Vec<u32> = sorted.iter().map(|l| l.var().index()).collect();
    vars.dedup();
    vars
}

/// Whether a normalized clause contains some variable in both
/// polarities.
pub(crate) fn is_tautology(sorted: &[cnf::Lit]) -> bool {
    sorted.windows(2).any(|w| w[0].var() == w[1].var())
}

/// Renders a clause as DIMACS literals, e.g. `(1 -2 3)`.
pub(crate) fn clause_dimacs(lits: &[cnf::Lit]) -> String {
    let mut s = String::from("(");
    for (i, l) in lits.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&l.to_dimacs().to_string());
    }
    s.push(')');
    s
}

/// Escapes `raw` into `out` per the JSON string grammar.
fn json_escape_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_sorted_per_artifact() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].code < pair[1].code || pair[0].artifact != pair[1].artifact,
                "{} vs {}",
                pair[0].code,
                pair[1].code
            );
        }
        let mut codes: Vec<&str> = REGISTRY.iter().map(|l| l.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), REGISTRY.len());
    }

    #[test]
    fn find_resolves_codes() {
        assert_eq!(find("RP101").unwrap().name, "chain-pivot-count");
        assert!(find("XX999").is_none());
    }

    #[test]
    fn report_caps_but_counts_everything() {
        let mut r = Report::new(Artifact::Proof);
        for i in 0..10 {
            r.emit(RP005, Some(Location::Step(i)), 3, || format!("dead {i}"));
        }
        assert_eq!(r.diagnostics().len(), 3);
        assert_eq!(r.total("RP005"), 10);
        assert_eq!(r.counts().infos, 10);
        assert!(r.is_clean());
        let mut buf = Vec::new();
        r.write_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("10 findings total (3 shown)"), "{text}");
        assert!(text.contains("proof: 0 errors, 0 warnings, 10 infos"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report::new(Artifact::Cnf);
        r.emit(CF002, Some(Location::Clause(4)), 20, || {
            "dup of \"clause\"\n0".into()
        });
        let json = r.to_json();
        assert!(json.contains("\"artifact\":\"cnf\""));
        assert!(json.contains("\\\"clause\\\"\\n0"));
        assert!(json.contains("{\"kind\":\"clause\",\"index\":4}"));
        // Balanced braces/brackets (cheap well-formedness smoke check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn absorb_merges_tallies() {
        let mut a = Report::new(Artifact::Proof);
        a.emit(RP001, Some(Location::Step(1)), 20, || "fwd".into());
        let mut b = Report::new(Artifact::Proof);
        b.emit(RP001, Some(Location::Step(2)), 20, || "fwd2".into());
        b.emit(RP004, None, 20, || "dup".into());
        a.absorb(b);
        assert_eq!(a.total("RP001"), 2);
        assert_eq!(a.total("RP004"), 1);
        assert_eq!(a.counts().errors, 2);
        assert_eq!(a.counts().warnings, 1);
    }
}
