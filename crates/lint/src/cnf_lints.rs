//! Lints for CNF formulas (`CFxxx`).

use crate::{Artifact, LintOptions, Location, Report, CF001, CF002, CF003, CF004};
use cnf::{Cnf, Lit};
use std::collections::HashMap;

/// Lints a CNF formula: unused declared variables ([`CF001`]),
/// duplicate clauses up to literal order ([`CF002`]), tautological
/// clauses ([`CF003`]), and contiguous unused variable ranges that
/// indicate a gap in a Tseitin encoding ([`CF004`]).
pub fn lint_cnf(f: &Cnf, opts: &LintOptions) -> Report {
    let mut r = Report::new(Artifact::Cnf);
    let cap = opts.max_per_lint;
    let mut used = vec![false; f.num_vars() as usize];
    let mut seen: HashMap<Vec<Lit>, usize> = HashMap::new();

    for (index, clause) in f.clauses().iter().enumerate() {
        for l in clause {
            used[l.var().as_usize()] = true;
        }
        let mut norm = clause.clone();
        norm.sort_unstable();
        norm.dedup();
        if norm.windows(2).any(|w| w[0].var() == w[1].var()) {
            r.emit(CF003, Some(Location::Clause(index as u32)), cap, || {
                "clause contains a variable in both polarities".into()
            });
        }
        match seen.entry(norm) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                r.emit(CF002, Some(Location::Clause(index as u32)), cap, || {
                    format!("clause repeats clause {first} verbatim (up to literal order)")
                });
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(index);
            }
        }
    }

    // Unused variables: lone holes get CF001, runs of two or more are
    // reported once as a range gap (CF004) — the signature of an entire
    // Tseitin node block going missing.
    let mut v = 0usize;
    while v < used.len() {
        if used[v] {
            v += 1;
            continue;
        }
        let start = v;
        while v < used.len() && !used[v] {
            v += 1;
        }
        let len = v - start;
        if len == 1 {
            r.emit(CF001, Some(Location::Var(start as u32)), cap, || {
                "declared variable occurs in no clause".into()
            });
        } else {
            r.emit(CF004, Some(Location::Var(start as u32)), cap, || {
                format!(
                    "variables {}..={} ({len} consecutive) occur in no clause",
                    start + 1,
                    start + len
                )
            });
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn x(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn clean_formula() {
        let mut f = Cnf::new();
        f.add_clause(vec![x(0).positive(), x(1).positive()]);
        f.add_clause(vec![x(0).negative(), x(1).negative()]);
        let r = lint_cnf(&f, &LintOptions::default());
        assert!(r.is_clean());
        assert_eq!(r.counts().warnings, 0);
        assert_eq!(r.counts().infos, 0);
    }

    #[test]
    fn duplicate_up_to_order_and_tautology() {
        let mut f = Cnf::new();
        f.add_clause(vec![x(0).positive(), x(1).positive()]);
        f.add_clause(vec![x(1).positive(), x(0).positive()]);
        f.add_clause(vec![x(2).positive(), x(2).negative()]);
        let r = lint_cnf(&f, &LintOptions::default());
        assert_eq!(r.total("CF002"), 1);
        assert_eq!(r.total("CF003"), 1);
        assert!(r.is_clean()); // warnings only
    }

    #[test]
    fn unused_variable_vs_range_gap() {
        let mut f = Cnf::new();
        f.reserve_vars(10);
        // Uses vars 0, 2, and 6..=9; leaves 1 (lone) and 3..=5 (run).
        f.add_clause(vec![x(0).positive(), x(2).positive()]);
        f.add_clause(vec![
            x(6).positive(),
            x(7).positive(),
            x(8).positive(),
            x(9).positive(),
        ]);
        let r = lint_cnf(&f, &LintOptions::default());
        assert_eq!(r.total("CF001"), 1);
        assert_eq!(r.total("CF004"), 1);
        let gap = r
            .diagnostics()
            .iter()
            .find(|d| d.lint.code == "CF004")
            .unwrap();
        assert!(gap.message.contains("4..=6"), "{}", gap.message);
    }
}
