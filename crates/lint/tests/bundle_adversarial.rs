//! Adversarial bundle corruptions against real engine artifacts.
//!
//! The engine proves a 2-thread (stitched) adder pair; the test then
//! rebuilds the very bundle `rcec --lint-bundle` assembles — miter
//! graph, miter CNF, proof, certificate metadata — and injects one
//! corruption at a time, asserting each maps to its distinct `XB` code
//! while the pristine bundle lints clean.

use aig::gen;
use cec::{miter_cnf, CecOptions, CecOutcome, Miter, Prover};
use cnf::{Cnf, Var};
use lint::{fix_proof, lint_bundle, Bundle, CertificateInfo, LintOptions};
use proof::Proof;

struct EngineBundle {
    graph: aig::Aig,
    cnf: Cnf,
    proof: Proof,
    info: CertificateInfo,
}

/// One stitched (2-thread) engine run over a 6-bit adder pair, plus the
/// same bundle reconstruction `rcec --lint-bundle` performs.
fn engine_bundle() -> EngineBundle {
    let a = gen::ripple_carry_adder(6);
    let b = gen::kogge_stone_adder(6);
    let options = CecOptions {
        threads: 2,
        ..CecOptions::default()
    };
    let outcome = Prover::new(options).prove(&a, &b).expect("prove");
    let CecOutcome::Equivalent(cert) = outcome else {
        panic!("adders are equivalent");
    };
    let miter = Miter::build(&a, &b, true);
    let cnf = miter_cnf(&miter);
    let info = cert.info();
    assert!(
        info.rounds.unwrap() > 0 && !info.stitch_boundaries.is_empty(),
        "2-thread run must stitch"
    );
    EngineBundle {
        graph: miter.graph,
        cnf,
        proof: cert.proof.clone().expect("proof recorded"),
        info,
    }
}

fn lint(b: &EngineBundle, cnf: &Cnf, proof: &Proof, info: &CertificateInfo) -> lint::Report {
    lint_bundle(
        &Bundle {
            aig: Some(&b.graph),
            cnf: Some(cnf),
            proof: Some(proof),
            certificate: Some(info),
        },
        &LintOptions::default(),
    )
}

#[test]
fn engine_bundle_corruption_classes_map_to_distinct_codes() {
    let b = engine_bundle();

    // Pristine: zero errors, zero warnings — every input step binds and
    // the stitched certificate agrees with the proof.
    let clean = lint(&b, &b.cnf, &b.proof, &b.info);
    assert!(clean.is_clean(), "{:?}", clean.diagnostics());
    assert_eq!(clean.counts().warnings, 0, "{:?}", clean.diagnostics());

    // Corruption 1: flip one literal of a Tseitin gate clause.
    let mut bad_cnf = b.cnf.clone();
    let victim = bad_cnf
        .clauses_mut()
        .iter_mut()
        .find(|c| c.len() == 3)
        .expect("gate clause");
    victim[0] = !victim[0];
    let r = lint(&b, &bad_cnf, &b.proof, &b.info);
    assert!(r.has("XB003"), "{:?}", r.diagnostics());

    // Corruption 2: smuggle a foreign input clause into the proof. Two
    // primary inputs never share a binary clause in a Tseitin encoding.
    let mut bad_proof = b.proof.clone();
    bad_proof.add_original([Var::new(1).positive(), Var::new(2).positive()]);
    let r = lint(&b, &b.cnf, &bad_proof, &b.info);
    assert!(r.has("XB005"), "{:?}", r.diagnostics());

    // Corruption 3: certificate pointing at the wrong empty-clause step.
    let bad_info = CertificateInfo {
        empty_clause: Some(0),
        ..b.info.clone()
    };
    let r = lint(&b, &b.cnf, &b.proof, &bad_info);
    assert!(r.has("XB007"), "{:?}", r.diagnostics());

    // All three at once: three distinct XB error codes, as the
    // acceptance criterion demands.
    let r = lint(&b, &bad_cnf, &bad_proof, &bad_info);
    for code in ["XB003", "XB005", "XB007"] {
        assert!(r.has(code), "missing {code}: {:?}", r.diagnostics());
    }
}

#[test]
fn dropped_stitch_boundary_is_xb008_and_stats_drift_is_xb009() {
    let b = engine_bundle();

    let mut dropped = b.info.clone();
    dropped.stitch_boundaries.pop();
    let r = lint(&b, &b.cnf, &b.proof, &dropped);
    assert!(r.has("XB008"), "{:?}", r.diagnostics());
    assert!(!r.has("XB009"), "{:?}", r.diagnostics());

    let drifted = CertificateInfo {
        resolutions: b.info.resolutions.map(|n| n + 1),
        ..b.info.clone()
    };
    let r = lint(&b, &b.cnf, &b.proof, &drifted);
    assert!(r.has("XB009"), "{:?}", r.diagnostics());
    assert!(!r.has("XB008"), "{:?}", r.diagnostics());
}

#[test]
fn fix_preserves_engine_refutations() {
    // Untrimmed engine proofs carry dead steps by construction; --fix's
    // library core must strip them while keeping the refutation whole.
    let b = engine_bundle();
    let fixed = fix_proof(&b.proof);
    assert!(fixed.changed, "engine proofs are untrimmed");
    assert!(fixed.proof.len() < b.proof.len());
    assert!(fixed.proof.empty_clause().is_some());
    proof::check::check_refutation(&fixed.proof).expect("fixed proof replays");

    let again = fix_proof(&fixed.proof);
    assert!(!again.changed, "fix must be idempotent");

    // The repaired proof still binds to the engine's CNF: dedup and
    // trim never invent input clauses.
    let r = lint_bundle(
        &Bundle {
            cnf: Some(&b.cnf),
            proof: Some(&fixed.proof),
            ..Bundle::default()
        },
        &LintOptions::default(),
    );
    assert!(r.is_clean(), "{:?}", r.diagnostics());
}
