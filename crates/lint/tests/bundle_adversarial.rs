//! Adversarial bundle corruptions against real engine artifacts.
//!
//! The engine proves a 2-thread (stitched) adder pair; the test then
//! rebuilds the very bundle `rcec --lint-bundle` assembles — miter
//! graph, miter CNF, proof, certificate metadata — and injects one
//! corruption at a time, asserting each maps to its distinct `XB` code
//! while the pristine bundle lints clean.

use aig::gen;
use cec::monolithic::{prove_monolithic, MonolithicOptions};
use cec::{miter_cnf, CecOptions, CecOutcome, Miter, Prover};
use cnf::{dimacs, tseitin, Cnf, Var};
use lint::{fix_proof, lint_bundle, Bundle, CertificateInfo, LintOptions};
use proof::export::{write_drat, write_tracecheck};
use proof::Proof;

struct EngineBundle {
    graph: aig::Aig,
    cnf: Cnf,
    proof: Proof,
    info: CertificateInfo,
}

/// One stitched (2-thread) engine run over a 6-bit adder pair, plus the
/// same bundle reconstruction `rcec --lint-bundle` performs.
fn engine_bundle() -> EngineBundle {
    let a = gen::ripple_carry_adder(6);
    let b = gen::kogge_stone_adder(6);
    let options = CecOptions {
        threads: 2,
        ..CecOptions::default()
    };
    let outcome = Prover::new(options).prove(&a, &b).expect("prove");
    let CecOutcome::Equivalent(cert) = outcome else {
        panic!("adders are equivalent");
    };
    let miter = Miter::build(&a, &b, true);
    let cnf = miter_cnf(&miter);
    let info = cert.info();
    assert!(
        info.rounds.unwrap() > 0 && !info.stitch_boundaries.is_empty(),
        "2-thread run must stitch"
    );
    EngineBundle {
        graph: miter.graph,
        cnf,
        proof: cert.proof.clone().expect("proof recorded"),
        info,
    }
}

fn lint(b: &EngineBundle, cnf: &Cnf, proof: &Proof, info: &CertificateInfo) -> lint::Report {
    lint_bundle(
        &Bundle {
            aig: Some(&b.graph),
            cnf: Some(cnf),
            proof: Some(proof),
            certificate: Some(info),
        },
        &LintOptions::default(),
    )
}

#[test]
fn engine_bundle_corruption_classes_map_to_distinct_codes() {
    let b = engine_bundle();

    // Pristine: zero errors, zero warnings — every input step binds and
    // the stitched certificate agrees with the proof.
    let clean = lint(&b, &b.cnf, &b.proof, &b.info);
    assert!(clean.is_clean(), "{:?}", clean.diagnostics());
    assert_eq!(clean.counts().warnings, 0, "{:?}", clean.diagnostics());

    // Corruption 1: flip one literal of a Tseitin gate clause.
    let mut bad_cnf = b.cnf.clone();
    let victim = bad_cnf
        .clauses_mut()
        .iter_mut()
        .find(|c| c.len() == 3)
        .expect("gate clause");
    victim[0] = !victim[0];
    let r = lint(&b, &bad_cnf, &b.proof, &b.info);
    assert!(r.has("XB003"), "{:?}", r.diagnostics());

    // Corruption 2: smuggle a foreign input clause into the proof. Two
    // primary inputs never share a binary clause in a Tseitin encoding.
    let mut bad_proof = b.proof.clone();
    bad_proof.add_original([Var::new(1).positive(), Var::new(2).positive()]);
    let r = lint(&b, &b.cnf, &bad_proof, &b.info);
    assert!(r.has("XB005"), "{:?}", r.diagnostics());

    // Corruption 3: certificate pointing at the wrong empty-clause step.
    let bad_info = CertificateInfo {
        empty_clause: Some(0),
        ..b.info.clone()
    };
    let r = lint(&b, &b.cnf, &b.proof, &bad_info);
    assert!(r.has("XB007"), "{:?}", r.diagnostics());

    // All three at once: three distinct XB error codes, as the
    // acceptance criterion demands.
    let r = lint(&b, &bad_cnf, &bad_proof, &bad_info);
    for code in ["XB003", "XB005", "XB007"] {
        assert!(r.has(code), "missing {code}: {:?}", r.diagnostics());
    }
}

#[test]
fn dropped_stitch_boundary_is_xb008_and_stats_drift_is_xb009() {
    let b = engine_bundle();

    let mut dropped = b.info.clone();
    dropped.stitch_boundaries.pop();
    let r = lint(&b, &b.cnf, &b.proof, &dropped);
    assert!(r.has("XB008"), "{:?}", r.diagnostics());
    assert!(!r.has("XB009"), "{:?}", r.diagnostics());

    let drifted = CertificateInfo {
        resolutions: b.info.resolutions.map(|n| n + 1),
        ..b.info.clone()
    };
    let r = lint(&b, &b.cnf, &b.proof, &drifted);
    assert!(r.has("XB009"), "{:?}", r.diagnostics());
    assert!(!r.has("XB008"), "{:?}", r.diagnostics());
}

#[test]
fn fix_preserves_engine_refutations() {
    // Untrimmed engine proofs carry dead steps by construction; --fix's
    // library core must strip them while keeping the refutation whole.
    let b = engine_bundle();
    let fixed = fix_proof(&b.proof);
    assert!(fixed.changed, "engine proofs are untrimmed");
    assert!(fixed.proof.len() < b.proof.len());
    assert!(fixed.proof.empty_clause().is_some());
    proof::check::check_refutation(&fixed.proof).expect("fixed proof replays");

    let again = fix_proof(&fixed.proof);
    assert!(!again.changed, "fix must be idempotent");

    // The repaired proof still binds to the engine's CNF: dedup and
    // trim never invent input clauses.
    let r = lint_bundle(
        &Bundle {
            cnf: Some(&b.cnf),
            proof: Some(&fixed.proof),
            ..Bundle::default()
        },
        &LintOptions::default(),
    );
    assert!(r.is_clean(), "{:?}", r.diagnostics());
}

// ---------------------------------------------------------------------------
// Monolithic baseline: bit flips over the serialized partitioned bundle.
// ---------------------------------------------------------------------------

/// splitmix64 finalizer — a tiny deterministic bit-position source so
/// the sweep needs no RNG dependency.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flips one seeded bit in place.
fn flip_bit(bytes: &mut [u8], seed: u64) {
    let h = mix(seed);
    let pos = (h % bytes.len() as u64) as usize;
    bytes[pos] ^= 1 << ((h >> 32) % 8);
}

struct MonolithicBundle {
    cnf: Cnf,
    proof: Proof,
    dimacs: Vec<u8>,
    trace: Vec<u8>,
    drat: Vec<u8>,
}

/// One monolithic run over a 3-bit adder pair: the single-call engine's
/// partitioned miter CNF plus its proof, serialized into every on-disk
/// format the bundle carries.
fn monolithic_bundle() -> MonolithicBundle {
    let a = gen::ripple_carry_adder(3);
    let b = gen::brent_kung_adder(3);
    let enc = tseitin::encode_miter(&a, &b);
    assert_eq!(enc.partition.len(), enc.cnf.num_clauses());
    assert!(
        enc.partition.contains(&tseitin::Partition::A)
            && enc.partition.contains(&tseitin::Partition::B),
        "partition labels must cover both circuits"
    );
    let outcome = prove_monolithic(&a, &b, &MonolithicOptions::default()).expect("prove");
    let CecOutcome::Equivalent(cert) = outcome else {
        panic!("adders are equivalent");
    };
    let proof = cert.proof.clone().expect("proof recorded");
    let mut dimacs_bytes = Vec::new();
    dimacs::write(&enc.cnf, &mut dimacs_bytes).unwrap();
    let mut trace = Vec::new();
    write_tracecheck(&proof, &mut trace).unwrap();
    let mut drat = Vec::new();
    write_drat(&proof, &mut drat).unwrap();
    MonolithicBundle {
        cnf: enc.cnf,
        proof,
        dimacs: dimacs_bytes,
        trace,
        drat,
    }
}

#[test]
fn monolithic_bundle_is_clean_and_its_proof_binds_to_the_partitioned_cnf() {
    let m = monolithic_bundle();
    let r = lint_bundle(
        &Bundle {
            cnf: Some(&m.cnf),
            proof: Some(&m.proof),
            ..Bundle::default()
        },
        &LintOptions::default(),
    );
    assert_eq!(r.counts().errors, 0, "{:?}", r.diagnostics());
    let dr = lint::lint_drat(&m.drat[..], Some(&m.cnf), &LintOptions::default()).unwrap();
    assert_eq!(dr.counts().errors, 0, "{:?}", dr.diagnostics());
}

/// Soundness under serialized corruption: a bit flip in the DIMACS text
/// is either rejected with a `CF`/`XB` error, or the surviving formula
/// still carries every clause the proof binds to (a benign flip). No
/// flip may both parse clean and orphan the proof.
#[test]
fn dimacs_bit_flips_are_rejected_or_benign() {
    let m = monolithic_bundle();
    let mut caught = 0;
    for seed in 0..100u64 {
        let mut bytes = m.dimacs.clone();
        flip_bit(&mut bytes, seed);
        let Ok(parsed) = dimacs::read(&bytes[..]) else {
            caught += 1;
            continue;
        };
        let r = lint_bundle(
            &Bundle {
                cnf: Some(&parsed),
                proof: Some(&m.proof),
                ..Bundle::default()
            },
            &LintOptions::default(),
        );
        if r.counts().errors > 0 {
            assert!(
                r.has("XB003") || r.has("XB005") || r.has("XB006") || r.has("XB001"),
                "seed {seed}: unexpected codes {:?}",
                r.diagnostics()
            );
            caught += 1;
        } else {
            // Error-free acceptance is only sound if the proof's input
            // steps all still bind — which the XB pass just verified —
            // and the refutation itself still replays.
            proof::check::check_refutation(&m.proof).unwrap();
        }
    }
    assert!(caught >= 50, "only {caught}/100 DIMACS flips caught");
}

/// A bit flip in the TraceCheck text is either rejected with an
/// `RP`/`XB` error, or the surviving proof is still a genuine checkable
/// refutation of the very same partitioned CNF. Never a false accept.
#[test]
fn tracecheck_bit_flips_are_rejected_or_still_valid_refutations() {
    let m = monolithic_bundle();
    let opts = LintOptions::default();
    let mut caught = 0;
    for seed in 0..100u64 {
        let mut bytes = m.trace.clone();
        flip_bit(&mut bytes, seed);
        // A flip that breaks UTF-8 surfaces as an I/O-level rejection.
        let Ok((mut report, parsed)) = lint::read_tracecheck(&bytes[..], &opts) else {
            caught += 1;
            continue;
        };
        let Some(p) = parsed else {
            assert!(
                report.counts().errors > 0,
                "seed {seed}: no proof, no error"
            );
            caught += 1;
            continue;
        };
        report.absorb(lint::lint_proof(&p, &opts));
        report.absorb(lint_bundle(
            &Bundle {
                cnf: Some(&m.cnf),
                proof: Some(&p),
                ..Bundle::default()
            },
            &opts,
        ));
        if report.counts().errors > 0 {
            caught += 1;
        } else {
            proof::check::check_refutation(&p)
                .unwrap_or_else(|e| panic!("seed {seed}: clean lint but broken proof: {e}"));
        }
    }
    assert!(caught >= 50, "only {caught}/100 TraceCheck flips caught");
}

/// A bit flip in the DRAT text is either rejected with a `DR` error
/// against the partitioned CNF, or the surviving trace is still a valid
/// RUP refutation of it.
#[test]
fn drat_bit_flips_are_rejected_or_still_refute() {
    let m = monolithic_bundle();
    let opts = LintOptions::default();
    let mut caught = 0;
    for seed in 0..100u64 {
        let mut bytes = m.drat.clone();
        flip_bit(&mut bytes, seed);
        // A flip that breaks UTF-8 surfaces as an I/O-level rejection.
        let Ok(r) = lint::lint_drat(&bytes[..], Some(&m.cnf), &opts) else {
            caught += 1;
            continue;
        };
        if r.counts().errors > 0 {
            assert!(
                r.has("DR001") || r.has("DR002") || r.has("DR005"),
                "seed {seed}: unexpected codes {:?}",
                r.diagnostics()
            );
            caught += 1;
        }
        // errors == 0 means every addition was RUP over the partitioned
        // CNF and the empty clause was still derived (DR005 otherwise)
        // — the flip degraded nothing the checker relies on.
    }
    assert!(caught >= 50, "only {caught}/100 DRAT flips caught");
}
