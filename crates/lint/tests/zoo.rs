//! Lints the proofs the engine emits for the whole circuit zoo —
//! sequentially and with four sweep workers — and asserts zero
//! error-severity findings, plus the acceptance benchmark: the
//! structural-only pass must beat full replay by at least 5×.
//!
//! Dead steps and duplicate derivations are *expected* in untrimmed
//! engine proofs (that is why `proof::trim` and `proof::compact`
//! exist), so the zoo asserts on errors, not warnings or infos.

use aig::gen;
use aig::Aig;
use cec::{CecOptions, CecOutcome, Prover};
use std::time::Instant;

/// Every equivalent pair in the benchmark family zoo, at small sizes
/// (mirrors `tests/end_to_end.rs`).
fn equivalent_pairs() -> Vec<(&'static str, Aig, Aig)> {
    vec![
        (
            "adder rca/ksa",
            gen::ripple_carry_adder(6),
            gen::kogge_stone_adder(6),
        ),
        (
            "adder rca/bka",
            gen::ripple_carry_adder(6),
            gen::brent_kung_adder(6),
        ),
        (
            "adder rca/csel",
            gen::ripple_carry_adder(6),
            gen::carry_select_adder(6, 2),
        ),
        (
            "mult array/csa",
            gen::array_multiplier(4),
            gen::carry_save_multiplier(4),
        ),
        (
            "alu ripple/ks",
            gen::alu(4, gen::AluArch::Ripple),
            gen::alu(4, gen::AluArch::KoggeStone),
        ),
        (
            "shifter log/mux",
            gen::barrel_shifter_log(8),
            gen::barrel_shifter_mux(8),
        ),
        (
            "cmp ripple/sub",
            gen::comparator_ripple(6),
            gen::comparator_subtract(6),
        ),
        (
            "parity chain/tree",
            gen::parity_chain(8),
            gen::parity_tree(8),
        ),
        (
            "adder rca/cskip",
            gen::ripple_carry_adder(6),
            gen::carry_skip_adder(6, 2),
        ),
        (
            "prio chain/onehot",
            gen::priority_encoder_chain(8),
            gen::priority_encoder_onehot(8),
        ),
        (
            "decoder flat/split",
            gen::decoder_flat(4),
            gen::decoder_split(4),
        ),
        (
            "popcount serial/csa",
            gen::popcount_serial(8),
            gen::popcount_csa(8),
        ),
    ]
}

fn lint_zoo(threads: usize) {
    for (name, a, b) in equivalent_pairs() {
        let options = CecOptions {
            threads,
            lint_proof: true,
            lint_bundle: true,
            ..CecOptions::default()
        };
        let outcome = Prover::new(options)
            .prove(&a, &b)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let CecOutcome::Equivalent(cert) = outcome else {
            panic!("{name}: zoo pair not proven equivalent");
        };
        let report = cert.lint_report.as_ref().expect("lint_proof ran");
        assert_eq!(
            report.counts().errors,
            0,
            "{name} (threads={threads}): {:?}",
            report.diagnostics()
        );
        assert_eq!(cert.stats.lints, Some(report.counts()));
        if threads > 1 {
            assert!(
                !cert.stats.stitch_boundaries.is_empty(),
                "{name}: parallel run must record stitch boundaries"
            );
        }
    }
}

#[test]
fn zoo_proofs_lint_clean_sequential() {
    lint_zoo(1);
}

#[test]
fn zoo_proofs_lint_clean_parallel() {
    lint_zoo(4);
}

/// Acceptance criterion: a structural-only lint pass over a 64-bit
/// adder proof must run at least 5× faster than the full `rcheck`
/// replay loop (strict chain replay + RUP cross-validation, which is
/// what `rcheck --refutation --rup` performs).
#[test]
fn structural_pass_beats_full_replay_on_64bit_adder() {
    let a = gen::ripple_carry_adder(64);
    let b = gen::kogge_stone_adder(64);
    let outcome = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("adders are equivalent");
    let p = cert.proof.as_ref().expect("proof recorded");

    // Warm both paths once so allocator and cache effects do not decide
    // the comparison, then time each.
    let opts = lint::LintOptions {
        expect_refutation: true,
        ..lint::LintOptions::structural()
    };
    let report = lint::lint_proof(p, &opts);
    assert_eq!(report.counts().errors, 0, "{:?}", report.diagnostics());
    proof::check::check_refutation(p).unwrap();

    let lint_start = Instant::now();
    let report = lint::lint_proof(p, &opts);
    let lint_elapsed = lint_start.elapsed();
    assert_eq!(report.counts().errors, 0);

    let replay_start = Instant::now();
    proof::check::check_refutation(p).unwrap();
    proof::check::check_rup(p).unwrap();
    let replay_elapsed = replay_start.elapsed();

    assert!(
        lint_elapsed * 5 <= replay_elapsed,
        "structural lint pass must be at least 5x faster than full replay: \
         lint {lint_elapsed:?} vs replay {replay_elapsed:?} over {} steps",
        p.len()
    );
}
