//! DIMACS CNF reading and writing.

use crate::{Cnf, Lit};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::num::NonZeroI32;

/// Error produced while reading a DIMACS file.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the DIMACS format; the message says how.
    Format(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error reading dimacs: {e}"),
            ParseDimacsError::Format(m) => write!(f, "invalid dimacs file: {m}"),
        }
    }
}

impl std::error::Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(cnf: &Cnf, mut w: W) -> io::Result<()> {
    writeln!(w, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(w, "{} ", lit.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

/// Reads a DIMACS CNF file. Comment lines (`c ...`) are ignored; the
/// header is validated against the actual clause count.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input or I/O failure.
pub fn read<R: BufRead>(r: R) -> Result<Cnf, ParseDimacsError> {
    let mut declared: Option<(u32, usize)> = None;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if declared.is_some() {
                return Err(ParseDimacsError::Format("duplicate header".into()));
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(ParseDimacsError::Format(
                    "header must be `p cnf VARS CLAUSES`".into(),
                ));
            }
            let vars: u32 = fields[1]
                .parse()
                .map_err(|e| ParseDimacsError::Format(format!("bad var count: {e}")))?;
            let clauses: usize = fields[2]
                .parse()
                .map_err(|e| ParseDimacsError::Format(format!("bad clause count: {e}")))?;
            declared = Some((vars, clauses));
            cnf.reserve_vars(vars);
            continue;
        }
        if declared.is_none() {
            return Err(ParseDimacsError::Format(
                "clause before `p cnf` header".into(),
            ));
        }
        for tok in line.split_whitespace() {
            let v: i32 = tok
                .parse()
                .map_err(|e| ParseDimacsError::Format(format!("bad literal `{tok}`: {e}")))?;
            match NonZeroI32::new(v) {
                None => {
                    cnf.add_clause(std::mem::take(&mut current));
                }
                Some(nz) => current.push(Lit::from_dimacs(nz)),
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Format(
            "last clause not terminated by 0".into(),
        ));
    }
    let (vars, clauses) =
        declared.ok_or_else(|| ParseDimacsError::Format("missing header".into()))?;
    if cnf.num_clauses() != clauses {
        return Err(ParseDimacsError::Format(format!(
            "header declares {clauses} clauses, found {}",
            cnf.num_clauses()
        )));
    }
    if cnf.num_vars() > vars {
        return Err(ParseDimacsError::Format(format!(
            "header declares {vars} variables, literal uses {}",
            cnf.num_vars()
        )));
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn sample() -> Cnf {
        let mut f = Cnf::new();
        let a = Var::new(0);
        let b = Var::new(1);
        let c = Var::new(2);
        f.add_clause(vec![a.positive(), b.negative()]);
        f.add_clause(vec![c.positive()]);
        f.add_clause(vec![a.negative(), b.positive(), c.negative()]);
        f
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let mut buf = Vec::new();
        write(&f, &mut buf).unwrap();
        let g = read(&buf[..]).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn reads_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 3 2\n1 -2\n3 0\nc mid\n-1 2 -3 0\n";
        let f = read(text.as_bytes()).unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read("1 2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_clause_count() {
        assert!(read("p cnf 2 2\n1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(read("p cnf 2 1\n1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_variable_beyond_header() {
        assert!(read("p cnf 1 1\n2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_clause_round_trips() {
        let mut f = Cnf::new();
        f.reserve_vars(1);
        f.add_clause(vec![]);
        let mut buf = Vec::new();
        write(&f, &mut buf).unwrap();
        let g = read(&buf[..]).unwrap();
        assert_eq!(g.num_clauses(), 1);
        assert!(g.clauses()[0].is_empty());
    }
}
