//! CNF formulas, Tseitin encoding of AIGs, and DIMACS I/O.
//!
//! This crate is the bridge between the circuit world ([`aig`]) and the
//! SAT/proof world (`sat`, `proof`): it defines the shared [`Var`]/[`Lit`]
//! /[`Clause`]/[`Cnf`] vocabulary, the [`tseitin`] encoder (including the
//! partitioned [miter encoding](tseitin::encode_miter) used by the
//! monolithic baseline and by Craig interpolation), and [`dimacs`] I/O
//! for interoperability with external solvers and checkers.
//!
//! # Example
//!
//! ```
//! use aig::gen::ripple_carry_adder;
//! use cnf::tseitin::encode;
//!
//! let adder = ripple_carry_adder(4);
//! let enc = encode(&adder);
//! // One definition variable per AIG node.
//! assert_eq!(enc.node_var.len(), adder.len());
//! ```

#![warn(missing_docs)]

pub mod dimacs;
pub mod tseitin;
mod types;

pub use types::{Clause, Cnf, Lit, Var};
