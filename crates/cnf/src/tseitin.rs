//! Tseitin encoding of AIGs into CNF.
//!
//! Every AIG node maps to one propositional variable; an AND node
//! `x = a ∧ b` contributes the three definition clauses
//! `(¬x ∨ a)`, `(¬x ∨ b)`, `(x ∨ ¬a ∨ ¬b)`. The constant node maps to a
//! variable constrained false by a unit clause, so the encoding of *any*
//! graph is standalone.

use crate::{Clause, Cnf, Lit, Var};
use aig::{Aig, Node};

/// Result of Tseitin-encoding an AIG: the formula plus the maps needed to
/// refer back to circuit nodes.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The encoded formula (definition clauses only; nothing asserted).
    pub cnf: Cnf,
    /// `node_var[node.index()]` is the solver variable of that AIG node.
    pub node_var: Vec<Var>,
    /// Solver literal for each primary input, in input order.
    pub input_lits: Vec<Lit>,
    /// Solver literal for each primary output, in output order
    /// (complement bits folded in).
    pub output_lits: Vec<Lit>,
}

impl Encoding {
    /// Solver literal corresponding to AIG literal `l`.
    pub fn lit(&self, l: aig::Lit) -> Lit {
        self.node_var[l.node().as_usize()]
            .positive()
            .xor_sign(l.is_complemented())
    }
}

/// The three Tseitin definition clauses of `x = a ∧ b`.
///
/// # Example
///
/// ```
/// use cnf::{tseitin::and_clauses, Var};
/// let [c1, c2, c3] = and_clauses(
///     Var::new(2).positive(),
///     Var::new(0).positive(),
///     Var::new(1).negative(),
/// );
/// assert_eq!(c1.len(), 2);
/// assert_eq!(c3.len(), 3);
/// ```
pub fn and_clauses(x: Lit, a: Lit, b: Lit) -> [Clause; 3] {
    [vec![!x, a], vec![!x, b], vec![x, !a, !b]]
}

/// Tseitin-encodes `aig`, starting variable numbering at `first_var`.
///
/// Variable 0 of the encoding (i.e. `first_var`) is the constant node's
/// variable, constrained to false by a unit clause.
pub fn encode_from(aig: &Aig, first_var: u32) -> Encoding {
    let mut cnf = Cnf::with_vars(first_var);
    let mut node_var = Vec::with_capacity(aig.len());
    for _ in 0..aig.len() {
        node_var.push(cnf.fresh_var());
    }
    // Constant node is false.
    cnf.add_clause(vec![node_var[0].negative()]);
    for (id, node) in aig.iter() {
        if let Node::And { a, b } = *node {
            let x = node_var[id.as_usize()].positive();
            let la = node_var[a.node().as_usize()]
                .positive()
                .xor_sign(a.is_complemented());
            let lb = node_var[b.node().as_usize()]
                .positive()
                .xor_sign(b.is_complemented());
            for c in and_clauses(x, la, lb) {
                cnf.add_clause(c);
            }
        }
    }
    let input_lits = aig
        .inputs()
        .iter()
        .map(|n| node_var[n.as_usize()].positive())
        .collect();
    let output_lits = aig
        .outputs()
        .iter()
        .map(|o| {
            node_var[o.node().as_usize()]
                .positive()
                .xor_sign(o.is_complemented())
        })
        .collect();
    Encoding {
        cnf,
        node_var,
        input_lits,
        output_lits,
    }
}

/// Tseitin-encodes `aig` starting at variable 0.
///
/// # Example
///
/// ```
/// use aig::Aig;
/// use cnf::tseitin::encode;
///
/// let mut g = Aig::new();
/// let x = g.add_input();
/// let y = g.add_input();
/// let n = g.and(x, y);
/// g.add_output(n);
///
/// let enc = encode(&g);
/// // 1 unit clause for the constant + 3 clauses for the AND.
/// assert_eq!(enc.cnf.num_clauses(), 4);
/// assert_eq!(enc.output_lits.len(), 1);
/// ```
pub fn encode(aig: &Aig) -> Encoding {
    encode_from(aig, 0)
}

/// Which side of an interpolation partition a clause belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Partition {
    /// The clause encodes (or asserts about) the first circuit.
    A,
    /// The clause encodes (or asserts about) the second circuit.
    B,
}

/// A monolithic miter encoding of two circuits, ready for a single SAT
/// call: satisfiable iff the circuits differ on some input.
#[derive(Clone, Debug)]
pub struct MiterEncoding {
    /// The complete formula: both encodings, input equalities, output
    /// difference detection, and the assertion that some output differs.
    pub cnf: Cnf,
    /// Encoding of the first circuit.
    pub enc_a: Encoding,
    /// Encoding of the second circuit.
    pub enc_b: Encoding,
    /// `partition[i]` labels clause `i` of [`MiterEncoding::cnf`] for
    /// Craig interpolation (A = first circuit side).
    pub partition: Vec<Partition>,
    /// The shared input variables (global, one per primary input).
    pub shared_inputs: Vec<Var>,
}

/// Builds the monolithic miter of two circuits with identical interfaces.
///
/// Both circuits are encoded over *separate* node variables; a shared
/// input variable per primary input is tied to each side's input variable
/// with equality clauses. The outputs are compared pairwise with XOR
/// "difference" variables, and the disjunction of all differences is
/// asserted. The formula is unsatisfiable iff the circuits are
/// equivalent.
///
/// Clause partition labels put circuit A's definitions and the
/// input-tie clauses for side A in [`Partition::A`]; everything else
/// (circuit B, its ties, the comparison layer) in [`Partition::B`].
///
/// # Panics
///
/// Panics if input or output counts differ, or if there are no outputs.
pub fn encode_miter(a: &Aig, b: &Aig) -> MiterEncoding {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    assert!(a.num_outputs() > 0, "miter needs at least one output");

    let mut cnf = Cnf::new();
    let mut partition = Vec::new();

    // Shared input variables come first.
    let shared_inputs: Vec<Var> = (0..a.num_inputs()).map(|_| cnf.fresh_var()).collect();

    let enc_a = encode_from(a, cnf.num_vars());
    let mut push = |cnf: &mut Cnf, clause: Clause, side: Partition| {
        cnf.add_clause(clause);
        partition.push(side);
    };
    cnf.reserve_vars(enc_a.cnf.num_vars());
    for c in enc_a.cnf.clauses() {
        push(&mut cnf, c.clone(), Partition::A);
    }
    for (shared, lit) in shared_inputs.iter().zip(enc_a.input_lits.iter()) {
        push(&mut cnf, vec![shared.negative(), *lit], Partition::A);
        push(&mut cnf, vec![shared.positive(), !*lit], Partition::A);
    }

    let enc_b = encode_from(b, cnf.num_vars());
    cnf.reserve_vars(enc_b.cnf.num_vars());
    for c in enc_b.cnf.clauses() {
        push(&mut cnf, c.clone(), Partition::B);
    }
    for (shared, lit) in shared_inputs.iter().zip(enc_b.input_lits.iter()) {
        push(&mut cnf, vec![shared.negative(), *lit], Partition::B);
        push(&mut cnf, vec![shared.positive(), !*lit], Partition::B);
    }

    // Difference detection: d_i <-> (oa_i XOR ob_i), assert OR d_i.
    let mut diff_lits = Vec::with_capacity(a.num_outputs());
    for (oa, ob) in enc_a.output_lits.iter().zip(enc_b.output_lits.iter()) {
        let d = cnf.fresh_var().positive();
        // d -> (oa != ob):  (¬d ∨ oa ∨ ob) (¬d ∨ ¬oa ∨ ¬ob)
        push(&mut cnf, vec![!d, *oa, *ob], Partition::B);
        push(&mut cnf, vec![!d, !*oa, !*ob], Partition::B);
        // (oa != ob) -> d:  (d ∨ ¬oa ∨ ob) (d ∨ oa ∨ ¬ob)
        push(&mut cnf, vec![d, !*oa, *ob], Partition::B);
        push(&mut cnf, vec![d, *oa, !*ob], Partition::B);
        diff_lits.push(d);
    }
    push(&mut cnf, diff_lits, Partition::B);

    MiterEncoding {
        cnf,
        enc_a,
        enc_b,
        partition,
        shared_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{kogge_stone_adder, mutate, ripple_carry_adder};

    /// Brute-force SAT check for tiny formulas.
    fn brute_sat(cnf: &Cnf) -> Option<Vec<bool>> {
        let n = cnf.num_vars();
        assert!(n <= 24, "formula too large for brute force");
        for bits in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if cnf.evaluate(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    #[test]
    fn encode_respects_and_semantics() {
        let mut g = Aig::new();
        let x = g.add_input();
        let y = g.add_input();
        let n = g.and(x, !y);
        g.add_output(n);
        let enc = encode(&g);
        // Forcing output true must force x=1, y=0.
        let mut f = enc.cnf.clone();
        f.add_clause(vec![enc.output_lits[0]]);
        let model = brute_sat(&f).expect("satisfiable");
        assert!(model[enc.input_lits[0].var().as_usize()]);
        assert!(!model[enc.input_lits[1].var().as_usize()]);
    }

    #[test]
    fn encoding_lit_maps_complements() {
        let mut g = Aig::new();
        let x = g.add_input();
        g.add_output(!x);
        let enc = encode(&g);
        assert_eq!(enc.lit(x), enc.input_lits[0]);
        assert_eq!(enc.lit(!x), !enc.input_lits[0]);
        assert_eq!(enc.output_lits[0], !enc.input_lits[0]);
    }

    /// Builds the unique assignment of the miter formula forced by the
    /// Tseitin definitions for a given input pattern.
    fn forced_assignment(m: &MiterEncoding, a: &Aig, b: &Aig, pattern: &[bool]) -> Vec<bool> {
        let mut assignment = vec![false; m.cnf.num_vars() as usize];
        for (v, &bit) in m.shared_inputs.iter().zip(pattern) {
            assignment[v.as_usize()] = bit;
        }
        for (enc, g) in [(&m.enc_a, a), (&m.enc_b, b)] {
            let values = g.evaluate_nodes(pattern);
            for (node, var) in enc.node_var.iter().enumerate() {
                assignment[var.as_usize()] = values[node];
            }
        }
        // Difference variables follow the two output literals.
        let first_diff = m.enc_b.cnf.num_vars();
        for (i, (oa, ob)) in m
            .enc_a
            .output_lits
            .iter()
            .zip(m.enc_b.output_lits.iter())
            .enumerate()
        {
            let va = assignment[oa.var().as_usize()] ^ oa.is_negative();
            let vb = assignment[ob.var().as_usize()] ^ ob.is_negative();
            assignment[first_diff as usize + i] = va != vb;
        }
        assignment
    }

    /// The miter formula is satisfiable iff some input pattern's forced
    /// assignment satisfies it (the Tseitin definitions pin every other
    /// variable). Returns the witness pattern.
    fn miter_sat(m: &MiterEncoding, a: &Aig, b: &Aig) -> Option<Vec<bool>> {
        let n = a.num_inputs();
        assert!(n <= 16);
        for bits in 0..(1u64 << n) {
            let pattern: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if m.cnf.evaluate(&forced_assignment(m, a, b, &pattern)) {
                return Some(pattern);
            }
        }
        None
    }

    #[test]
    fn miter_of_equivalent_circuits_is_unsat() {
        let a = ripple_carry_adder(2);
        let b = kogge_stone_adder(2);
        let m = encode_miter(&a, &b);
        assert!(miter_sat(&m, &a, &b).is_none());
        assert_eq!(m.partition.len(), m.cnf.num_clauses());
    }

    #[test]
    fn miter_of_inequivalent_circuits_is_sat() {
        let a = ripple_carry_adder(2);
        // Find a mutant that actually differs.
        let b = (0..20)
            .filter_map(|s| mutate(&a, s))
            .find(|m| aig::sim::exhaustive_diff(&a, m, 8).is_some())
            .expect("some mutant differs");
        let m = encode_miter(&a, &b);
        let pattern = miter_sat(&m, &a, &b).expect("miter satisfiable");
        assert_ne!(a.evaluate(&pattern), b.evaluate(&pattern));
    }

    #[test]
    #[should_panic(expected = "input counts differ")]
    fn miter_rejects_mismatched_interfaces() {
        let a = ripple_carry_adder(2);
        let b = ripple_carry_adder(3);
        encode_miter(&a, &b);
    }

    #[test]
    fn partition_sides_cover_both_circuits() {
        let a = ripple_carry_adder(2);
        let b = kogge_stone_adder(2);
        let m = encode_miter(&a, &b);
        let na = m.partition.iter().filter(|p| **p == Partition::A).count();
        let nb = m.partition.iter().filter(|p| **p == Partition::B).count();
        assert!(na > 0 && nb > 0);
        assert_eq!(na + nb, m.cnf.num_clauses());
    }
}
