//! Propositional variables, literals, clauses, and formulas.

use std::fmt;
use std::num::NonZeroI32;

/// A propositional variable, 0-based.
///
/// # Example
///
/// ```
/// use cnf::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.positive().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// 0-based index of this variable.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Index as `usize`, for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub const fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub const fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign
    /// (`negated = true` gives the negative literal).
    #[inline]
    pub const fn lit(self, negated: bool) -> Lit {
        Lit(self.0 << 1 | negated as u32)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A propositional literal: a [`Var`] plus a sign, packed as
/// `var * 2 + negated`.
///
/// # Example
///
/// ```
/// use cnf::{Lit, Var};
/// let p = Var::new(0).positive();
/// assert!(!p.is_negative());
/// assert_eq!(!p, Var::new(0).negative());
/// assert_eq!(p.to_dimacs(), 1);
/// assert_eq!((!p).to_dimacs(), -1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from its packed encoding (`var * 2 + sign`).
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Packed encoding (`var * 2 + sign`).
    #[inline]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// The variable of this literal.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negative literal of its variable.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// This literal negated iff `flip` is true.
    #[inline]
    pub const fn xor_sign(self, flip: bool) -> Lit {
        Lit(self.0 ^ flip as u32)
    }

    /// Converts to DIMACS convention: 1-based, sign = polarity.
    ///
    /// # Panics
    ///
    /// Panics if the variable index exceeds `i32::MAX - 1`.
    pub fn to_dimacs(self) -> i32 {
        let v = i32::try_from(self.var().index() + 1).expect("variable index overflows dimacs");
        if self.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Parses a DIMACS literal (nonzero; sign = polarity).
    pub fn from_dimacs(value: NonZeroI32) -> Lit {
        let v = value.get();
        Var::new(v.unsigned_abs() - 1).lit(v < 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(v: Var) -> Lit {
        v.positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A disjunction of literals.
///
/// Stored as a plain vector; emptiness means *false*.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
///
/// # Example
///
/// ```
/// use cnf::{Cnf, Var};
/// let mut f = Cnf::new();
/// let a = f.fresh_var().positive();
/// let b = f.fresh_var().positive();
/// f.add_clause(vec![a, b]);
/// f.add_clause(vec![!a]);
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates an empty formula with `num_vars` pre-allocated variables.
    pub fn with_vars(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses, in insertion order.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Appends a clause, growing the variable count if the clause
    /// mentions unseen variables. Returns the clause index.
    pub fn add_clause(&mut self, clause: Clause) -> usize {
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(clause);
        self.clauses.len() - 1
    }

    /// Mutable access to the clause list, for in-place edits such as
    /// strengthening, reordering, or removing clauses. Callers must not
    /// introduce variables at or beyond [`Cnf::num_vars`]; call
    /// [`Cnf::reserve_vars`] first when widening a clause.
    #[inline]
    pub fn clauses_mut(&mut self) -> &mut Vec<Clause> {
        &mut self.clauses
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Evaluates the formula under a total assignment
    /// (`assignment[v]` is the value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than [`Cnf::num_vars`].
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars as usize);
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().as_usize()] ^ l.is_negative())
        })
    }
}

impl Extend<Clause> for Cnf {
    fn extend<T: IntoIterator<Item = Clause>>(&mut self, iter: T) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        let mut f = Cnf::new();
        f.extend(iter);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_lit_round_trip() {
        let v = Var::new(5);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.negative().is_negative());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(v.lit(true), v.negative());
        assert_eq!(Lit::from_code(v.positive().code()), v.positive());
    }

    #[test]
    fn dimacs_round_trip() {
        for code in 0..20u32 {
            let l = Lit::from_code(code);
            let d = l.to_dimacs();
            assert_eq!(Lit::from_dimacs(NonZeroI32::new(d).unwrap()), l);
        }
        assert_eq!(Var::new(0).positive().to_dimacs(), 1);
        assert_eq!(Var::new(2).negative().to_dimacs(), -3);
    }

    #[test]
    fn cnf_grows_vars_from_clauses() {
        let mut f = Cnf::new();
        f.add_clause(vec![Var::new(9).positive()]);
        assert_eq!(f.num_vars(), 10);
        f.reserve_vars(4);
        assert_eq!(f.num_vars(), 10);
        f.reserve_vars(20);
        assert_eq!(f.num_vars(), 20);
    }

    #[test]
    fn evaluate_formula() {
        let mut f = Cnf::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        f.add_clause(vec![a.positive(), b.positive()]);
        f.add_clause(vec![a.negative(), b.positive()]);
        assert!(f.evaluate(&[true, true]));
        assert!(f.evaluate(&[false, true]));
        assert!(!f.evaluate(&[true, false]));
        assert!(!f.evaluate(&[false, false]));
    }

    #[test]
    fn empty_clause_is_false() {
        let mut f = Cnf::new();
        f.add_clause(vec![]);
        assert!(!f.evaluate(&[]));
    }

    #[test]
    fn collect_and_extend() {
        let f: Cnf = vec![vec![Var::new(0).positive()], vec![Var::new(1).negative()]]
            .into_iter()
            .collect();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_literals(), 2);
    }

    #[test]
    fn lit_display() {
        assert_eq!(format!("{}", Var::new(1).positive()), "v1");
        assert_eq!(format!("{}", Var::new(1).negative()), "¬v1");
    }
}
