//! Property-based tests for CNF types, DIMACS, and Tseitin encoding.

use cnf::{dimacs, tseitin, Clause, Cnf, Lit, Var};
use proptest::prelude::*;

fn clause_strategy(num_vars: u32) -> impl Strategy<Value = Clause> {
    prop::collection::vec((0..num_vars, any::<bool>()), 0..6)
        .prop_map(|lits| lits.into_iter().map(|(v, s)| Var::new(v).lit(s)).collect())
}

fn cnf_strategy() -> impl Strategy<Value = Cnf> {
    (1u32..12).prop_flat_map(|nv| {
        prop::collection::vec(clause_strategy(nv), 0..30).prop_map(move |clauses| {
            let mut f = Cnf::with_vars(nv);
            f.extend(clauses);
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// DIMACS write/read is the identity on formulas.
    #[test]
    fn dimacs_round_trip(f in cnf_strategy()) {
        let mut buf = Vec::new();
        dimacs::write(&f, &mut buf).unwrap();
        let g = dimacs::read(&buf[..]).unwrap();
        prop_assert_eq!(f.clauses(), g.clauses());
        prop_assert!(g.num_vars() <= f.num_vars());
    }

    /// Literal code / DIMACS integer conversions are mutually inverse.
    #[test]
    fn literal_encodings_round_trip(v in 0u32..1_000_000, neg in any::<bool>()) {
        let l = Var::new(v).lit(neg);
        prop_assert_eq!(Lit::from_code(l.code()), l);
        let d = l.to_dimacs();
        prop_assert_eq!(Lit::from_dimacs(std::num::NonZeroI32::new(d).unwrap()), l);
        prop_assert_eq!(!!l, l);
        prop_assert_eq!((!l).var(), l.var());
    }

    /// The Tseitin encoding of a random circuit is satisfied exactly by
    /// assignments that follow the circuit's evaluation.
    #[test]
    fn tseitin_is_functionally_faithful(
        inputs in 1usize..6,
        gates in 0usize..40,
        seed in any::<u64>(),
        pattern_bits in any::<u64>(),
    ) {
        let g = aig::gen::random_aig(inputs, gates, 1, seed);
        let enc = tseitin::encode(&g);
        let pattern: Vec<bool> = (0..inputs).map(|i| pattern_bits >> i & 1 == 1).collect();
        let values = g.evaluate_nodes(&pattern);
        let mut assignment = vec![false; enc.cnf.num_vars() as usize];
        for (node, var) in enc.node_var.iter().enumerate() {
            assignment[var.as_usize()] = values[node];
        }
        // The induced assignment satisfies every definition clause.
        prop_assert!(enc.cnf.evaluate(&assignment));
        // Flipping any single non-input gate variable breaks it.
        for (id, _, _) in g.iter_ands() {
            let var = enc.node_var[id.as_usize()];
            assignment[var.as_usize()] = !assignment[var.as_usize()];
            prop_assert!(!enc.cnf.evaluate(&assignment), "flip of {var:?} undetected");
            assignment[var.as_usize()] = !assignment[var.as_usize()];
        }
    }
}
