//! Cross-query certificate cache for the CEC service.
//!
//! A long-running checker sees the same queries again and again —
//! regression reruns, repeated CI batches, the same IP block
//! instantiated under different node numberings. This crate lets a
//! service answer those repeats from memory while keeping the paper's
//! central property intact: **no verdict is ever served on trust**.
//!
//! - [`canonical_form`] rewrites an AIG into a node-order-independent
//!   normal form, so structurally isomorphic circuits (same logic,
//!   different node numbering or fanin order) map to identical bytes.
//! - [`CanonicalPair`] canonicalizes a query pair and derives its
//!   128-bit FNV [`CacheKey`]. The engine is pointed at the *canonical*
//!   pair, so isomorphic queries don't just hit the same slot — they
//!   reproduce byte-identical certificates.
//! - [`CertCache`] is an LRU of proven verdicts (refutation bytes for
//!   equivalent pairs, counterexample patterns for inequivalent ones)
//!   with an optional on-disk spill tier. Every hit is re-validated
//!   before it is served: certificates are replayed through
//!   `proof::check::check_refutation` and re-bound to the pair's miter
//!   CNF, counterexamples are re-evaluated on both circuits. An entry
//!   that fails replay — bit rot, a corrupted spill file, a poisoned
//!   cache — is dropped and reported as a miss, never served.
//!
//! The replay-before-serve invariant is structural: the only way to get
//! a verdict out of [`CertCache::lookup`] is through
//! [`validate`](CachedVerdict), so a poisoned entry cannot reach a
//! client. The `chaos` crate's fault modes are used in this crate's
//! tests to prove exactly that.

#![warn(missing_docs)]

mod canon;
mod store;

pub use canon::{cache_key, canonical_form, CacheKey, CanonicalPair};
pub use store::{CacheConfig, CacheStats, CachedVerdict, CertCache};
