//! The certificate store: an in-memory LRU over proven verdicts with an
//! optional on-disk spill tier, every hit replay-validated before it is
//! served.

use crate::canon::{CacheKey, CanonicalPair};
use cec::{miter_cnf, Miter};
use obs::metrics::{self, Metrics};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

/// Configuration of a [`CertCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum in-memory entries; least-recently-used entries beyond
    /// this spill to disk (if a spill dir is set) or are dropped.
    pub capacity: usize,
    /// Second-tier directory: evicted entries are written here and
    /// promoted back on lookup. `None` disables the disk tier.
    pub spill_dir: Option<PathBuf>,
    /// Must match the engine's `share_structure` option — the replay
    /// validation rebuilds the miter the same way the prover did, so a
    /// cached refutation re-binds to exactly the clauses the engine
    /// would feed its solver.
    pub share_structure: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 256,
            spill_dir: None,
            share_structure: true,
        }
    }
}

/// A cached, *proven* verdict. Holding one of these means validation
/// succeeded against the querying pair at lookup time or the verdict
/// was just proven by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The pair is equivalent; `tracecheck` is the serialized
    /// refutation, byte-identical to what a fresh proof of the
    /// canonical pair produces.
    Equivalent {
        /// TraceCheck bytes of the refutation.
        tracecheck: Vec<u8>,
    },
    /// The pair is inequivalent under this input pattern.
    Inequivalent {
        /// Distinguishing input pattern, one bool per circuit input.
        pattern: Vec<bool>,
    },
}

/// Verdict counters, mirrored into `cec.cache.*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache (after successful replay validation).
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// In-memory entries pushed out by the LRU policy.
    pub evictions: u64,
    /// Entries found but rejected by replay validation (and dropped).
    pub replay_rejects: u64,
    /// Entries inserted (fresh proofs recorded).
    pub insertions: u64,
}

struct Entry {
    verdict: CachedVerdict,
    last_used: u64,
}

/// The cross-query certificate cache.
///
/// Keys are structural ([`CanonicalPair::key`]); values are proven
/// verdicts. The cache never serves trust: [`CertCache::lookup`]
/// replays every candidate against the querying pair and converts
/// validation failures into misses, so a corrupted or poisoned entry
/// (wrong bytes on disk, an entry inserted for the wrong pair) is
/// dropped, counted in [`CacheStats::replay_rejects`], and the caller
/// re-proves.
pub struct CertCache {
    config: CacheConfig,
    map: HashMap<String, Entry>,
    tick: u64,
    stats: CacheStats,
    m_hits: metrics::Counter,
    m_misses: metrics::Counter,
    m_evictions: metrics::Counter,
    m_replay_rejects: metrics::Counter,
    m_insertions: metrics::Counter,
    m_entries: metrics::Gauge,
}

impl CertCache {
    /// Creates a cache reporting into `metrics` (`cec.cache.*` cells;
    /// pass `Metrics::disabled()` for none). If a spill dir is
    /// configured it is created eagerly so later evictions cannot fail
    /// on a missing path.
    pub fn new(config: CacheConfig, metrics: &Metrics) -> std::io::Result<Self> {
        if let Some(dir) = &config.spill_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(CertCache {
            config,
            map: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            m_hits: metrics.counter("cec.cache.hits"),
            m_misses: metrics.counter("cec.cache.misses"),
            m_evictions: metrics.counter("cec.cache.evictions"),
            m_replay_rejects: metrics.counter("cec.cache.replay_rejects"),
            m_insertions: metrics.counter("cec.cache.insertions"),
            m_entries: metrics.gauge("cec.cache.entries"),
        })
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// In-memory entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a verdict for `pair`, validating before serving.
    ///
    /// Returns `None` (a miss) when no entry exists *or* when the
    /// stored entry fails replay validation — the caller cannot
    /// distinguish a poisoned entry from an absent one, which is the
    /// point: both mean "prove it yourself".
    pub fn lookup(&mut self, pair: &CanonicalPair) -> Option<CachedVerdict> {
        self.tick += 1;
        let key = pair.key.as_hex().to_string();
        let candidate = if let Some(e) = self.map.get_mut(&key) {
            e.last_used = self.tick;
            Some(e.verdict.clone())
        } else {
            self.read_spill(&pair.key)
        };
        let Some(verdict) = candidate else {
            self.miss();
            return None;
        };
        if validate(pair, &verdict, self.config.share_structure) {
            // A disk-tier hit is promoted into memory.
            if !self.map.contains_key(&key) {
                self.install(key, verdict.clone());
            }
            self.stats.hits += 1;
            self.m_hits.inc();
            Some(verdict)
        } else {
            // Poisoned or stale: drop both tiers, report a miss.
            self.map.remove(&key);
            self.remove_spill(&pair.key);
            self.update_entries_gauge();
            self.stats.replay_rejects += 1;
            self.m_replay_rejects.inc();
            self.miss();
            None
        }
    }

    /// Records a freshly proven verdict for `pair`.
    pub fn insert(&mut self, pair: &CanonicalPair, verdict: CachedVerdict) {
        self.tick += 1;
        self.stats.insertions += 1;
        self.m_insertions.inc();
        self.install(pair.key.as_hex().to_string(), verdict);
    }

    fn install(&mut self, key: String, verdict: CachedVerdict) {
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                verdict,
                last_used: tick,
            },
        );
        while self.map.len() > self.config.capacity.max(1) {
            self.evict_lru();
        }
        self.update_entries_gauge();
    }

    fn evict_lru(&mut self) {
        let Some(victim) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        let entry = self.map.remove(&victim).expect("victim present");
        self.write_spill(&victim, &entry.verdict);
        self.stats.evictions += 1;
        self.m_evictions.inc();
    }

    fn miss(&mut self) {
        self.stats.misses += 1;
        self.m_misses.inc();
    }

    #[allow(clippy::cast_possible_wrap)]
    fn update_entries_gauge(&self) {
        self.m_entries.set(self.map.len() as i64);
    }

    fn spill_path(&self, key: &CacheKey) -> Option<PathBuf> {
        self.config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.cert")))
    }

    /// Spill format: one header line (`eq` or `ne <pattern>`), then the
    /// tracecheck bytes for `eq`. Deliberately trivial — corruption is
    /// caught by replay validation, not by the format.
    fn write_spill(&self, key: &str, verdict: &CachedVerdict) {
        let Some(dir) = &self.config.spill_dir else {
            return;
        };
        let path = dir.join(format!("{key}.cert"));
        let bytes = match verdict {
            CachedVerdict::Equivalent { tracecheck } => {
                let mut v = b"eq\n".to_vec();
                v.extend_from_slice(tracecheck);
                v
            }
            CachedVerdict::Inequivalent { pattern } => {
                let mut v = b"ne ".to_vec();
                v.extend(pattern.iter().map(|&b| if b { b'1' } else { b'0' }));
                v.push(b'\n');
                v
            }
        };
        // Spill failures are not errors: the disk tier is best-effort
        // and a lost entry just means a future re-prove.
        let _ = std::fs::File::create(&path).and_then(|mut f| f.write_all(&bytes));
    }

    fn read_spill(&self, key: &CacheKey) -> Option<CachedVerdict> {
        let path = self.spill_path(key)?;
        let bytes = std::fs::read(path).ok()?;
        if let Some(rest) = bytes.strip_prefix(b"eq\n") {
            return Some(CachedVerdict::Equivalent {
                tracecheck: rest.to_vec(),
            });
        }
        let rest = bytes.strip_prefix(b"ne ")?;
        let line = rest.strip_suffix(b"\n").unwrap_or(rest);
        let mut pattern = Vec::with_capacity(line.len());
        for &c in line {
            match c {
                b'0' => pattern.push(false),
                b'1' => pattern.push(true),
                _ => return None,
            }
        }
        Some(CachedVerdict::Inequivalent { pattern })
    }

    fn remove_spill(&self, key: &CacheKey) {
        if let Some(path) = self.spill_path(key) {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Replay-validates a candidate verdict against the pair it is about to
/// be served for. This is the cache's trust boundary: everything read
/// from memory or disk passes through here, and only `true` lets a
/// verdict out.
///
/// - An equivalence certificate must parse, its resolution steps must
///   replay (`proof::check::check_refutation`), and every original
///   clause it builds on must be a clause of *this pair's* miter CNF —
///   so a certificate for some other pair (or a tampered one) cannot
///   re-bind.
/// - A counterexample must actually distinguish the two circuits when
///   re-evaluated.
fn validate(pair: &CanonicalPair, verdict: &CachedVerdict, share_structure: bool) -> bool {
    match verdict {
        CachedVerdict::Equivalent { tracecheck } => {
            let Ok(p) = proof::import::read_tracecheck(tracecheck.as_slice()) else {
                return false;
            };
            if proof::check::check_refutation(&p).is_err() {
                return false;
            }
            originals_bind_to_miter(pair, &p, share_structure)
        }
        CachedVerdict::Inequivalent { pattern } => {
            if pattern.len() != pair.a.num_inputs() {
                return false;
            }
            pair.a.evaluate(pattern) != pair.b.evaluate(pattern)
        }
    }
}

/// Every original step of `p` must occur (as a literal multiset) among
/// the clauses of the pair's miter CNF.
fn originals_bind_to_miter(pair: &CanonicalPair, p: &proof::Proof, share_structure: bool) -> bool {
    let miter = Miter::build(&pair.a, &pair.b, share_structure);
    let formula = miter_cnf(&miter);
    let mut available: HashMap<Vec<cnf::Lit>, usize> = HashMap::new();
    for c in formula.clauses() {
        let mut k = c.clone();
        k.sort_unstable_by_key(|l| l.to_dimacs());
        *available.entry(k).or_insert(0) += 1;
    }
    for (_, step) in p.iter() {
        if !step.is_original() {
            continue;
        }
        let mut k = step.clause.to_vec();
        k.sort_unstable_by_key(|l| l.to_dimacs());
        match available.get_mut(&k) {
            Some(n) if *n > 0 => *n -= 1,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::CanonicalPair;
    use aig::gen::{kogge_stone_adder, mutate, ripple_carry_adder};
    use cec::{CecOptions, Prover};

    fn prove_verdict(pair: &CanonicalPair) -> CachedVerdict {
        let outcome = Prover::new(CecOptions::default())
            .prove(&pair.a, &pair.b)
            .unwrap();
        match outcome {
            cec::CecOutcome::Equivalent(cert) => {
                let mut bytes = Vec::new();
                proof::export::write_tracecheck(cert.proof.as_ref().unwrap(), &mut bytes).unwrap();
                CachedVerdict::Equivalent { tracecheck: bytes }
            }
            cec::CecOutcome::Inequivalent { counterexample, .. } => CachedVerdict::Inequivalent {
                pattern: counterexample.pattern,
            },
        }
    }

    #[test]
    fn isomorphic_hit_with_byte_identical_certificate() {
        let a = ripple_carry_adder(5);
        let b = kogge_stone_adder(5);
        let mut cache = CertCache::new(CacheConfig::default(), &Metrics::disabled()).unwrap();

        let pair = CanonicalPair::new(&a, &b);
        assert_eq!(cache.lookup(&pair), None, "cold cache misses");
        let fresh = prove_verdict(&pair);
        cache.insert(&pair, fresh.clone());

        // The same pair under a different node numbering: same key,
        // and the served certificate equals a fresh proof byte for
        // byte (the engine proves canonical forms).
        let iso = CanonicalPair::new(&a.permute_rebuild(7), &b.permute_rebuild(19));
        assert_eq!(iso.key, pair.key);
        let served = cache.lookup(&iso).expect("isomorphic query hits");
        assert_eq!(served, fresh, "hit and miss agree byte for byte");
        assert_eq!(served, prove_verdict(&iso));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn near_miss_mutant_misses() {
        let a = ripple_carry_adder(5);
        let b = kogge_stone_adder(5);
        let mut cache = CertCache::new(CacheConfig::default(), &Metrics::disabled()).unwrap();
        let pair = CanonicalPair::new(&a, &b);
        cache.insert(&pair, prove_verdict(&pair));

        let mutant = (0..40)
            .filter_map(|s| mutate(&b, s))
            .find(|m| aig::sim::exhaustive_diff(&b, m, 11).is_some())
            .expect("differing mutant");
        let near = CanonicalPair::new(&a, &mutant);
        assert_ne!(near.key, pair.key, "one-gate mutant gets its own key");
        assert_eq!(cache.lookup(&near), None, "near miss is a miss");
    }

    #[test]
    fn counterexample_verdicts_cache_and_validate() {
        let a = ripple_carry_adder(4);
        let b = (0..40)
            .filter_map(|s| mutate(&a, s))
            .find(|m| aig::sim::exhaustive_diff(&a, m, 9).is_some())
            .expect("differing mutant");
        let mut cache = CertCache::new(CacheConfig::default(), &Metrics::disabled()).unwrap();
        let pair = CanonicalPair::new(&a, &b);
        let verdict = prove_verdict(&pair);
        assert!(matches!(verdict, CachedVerdict::Inequivalent { .. }));
        cache.insert(&pair, verdict.clone());
        assert_eq!(cache.lookup(&pair).as_ref(), Some(&verdict));
        // A pattern that does NOT distinguish must be rejected.
        let bogus = CachedVerdict::Inequivalent {
            pattern: vec![false; a.num_inputs()],
        };
        let distinguishes = pair.a.evaluate(&vec![false; a.num_inputs()])
            != pair.b.evaluate(&vec![false; a.num_inputs()]);
        if !distinguishes {
            cache.insert(&pair, bogus);
            assert_eq!(cache.lookup(&pair), None, "bogus pattern rejected");
            assert_eq!(cache.stats().replay_rejects, 1);
        }
    }

    #[test]
    fn certificate_for_wrong_pair_is_rejected() {
        let a = ripple_carry_adder(4);
        let b = kogge_stone_adder(4);
        let other_a = ripple_carry_adder(5);
        let other_b = kogge_stone_adder(5);
        let mut cache = CertCache::new(CacheConfig::default(), &Metrics::disabled()).unwrap();
        let pair = CanonicalPair::new(&a, &b);
        let other = CanonicalPair::new(&other_a, &other_b);
        // Poison: store the OTHER pair's certificate under this key.
        cache.insert(&pair, prove_verdict(&other));
        assert_eq!(cache.lookup(&pair), None, "foreign certificate rejected");
        assert_eq!(cache.stats().replay_rejects, 1);
    }

    #[test]
    fn lru_evicts_to_spill_and_promotes_back() {
        let dir = std::env::temp_dir().join(format!("rcec-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            capacity: 1,
            spill_dir: Some(dir.clone()),
            share_structure: true,
        };
        let mut cache = CertCache::new(config, &Metrics::disabled()).unwrap();
        let p1 = CanonicalPair::new(&ripple_carry_adder(4), &kogge_stone_adder(4));
        let p2 = CanonicalPair::new(&ripple_carry_adder(5), &kogge_stone_adder(5));
        let v1 = prove_verdict(&p1);
        cache.insert(&p1, v1.clone());
        cache.insert(&p2, prove_verdict(&p2)); // evicts p1 to disk
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1);
        let spilled = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(spilled, 1, "evicted entry landed on disk");
        // Disk-tier hit, validated and promoted.
        assert_eq!(cache.lookup(&p1).as_ref(), Some(&v1));
        assert_eq!(cache.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_spill_entry_is_rejected_not_served() {
        let dir = std::env::temp_dir().join(format!("rcec-cache-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            capacity: 1,
            spill_dir: Some(dir.clone()),
            share_structure: true,
        };
        let mut cache = CertCache::new(config, &Metrics::disabled()).unwrap();
        let p1 = CanonicalPair::new(&ripple_carry_adder(4), &kogge_stone_adder(4));
        let p2 = CanonicalPair::new(&ripple_carry_adder(5), &kogge_stone_adder(5));
        cache.insert(&p1, prove_verdict(&p1));
        cache.insert(&p2, prove_verdict(&p2)); // p1 spills to disk

        // Corrupt the spilled certificate with each chaos fault mode.
        let path = dir.join(format!("{}.cert", p1.key));
        let pristine = std::fs::read(&path).unwrap();
        for (i, &mode) in chaos::FAULT_MODES.iter().enumerate() {
            let mut bytes = pristine.clone();
            let what = chaos::corrupt(&mut bytes, mode, 0xBAD5EED + i as u64);
            std::fs::write(&path, &bytes).unwrap();
            let before = cache.stats().replay_rejects;
            assert_eq!(
                cache.lookup(&p1),
                None,
                "corrupted entry ({what}) must be rejected, not served"
            );
            assert_eq!(cache.stats().replay_rejects, before + 1);
            // The reject dropped the spill file; restore for next mode.
            std::fs::write(&path, &pristine).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
