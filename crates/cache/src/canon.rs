//! Structural canonicalization: a node-order-independent normal form
//! for AIGs, and the cache key derived from it.
//!
//! Two queries should share a cache slot when they are the *same
//! instance* up to renaming: identical logic over the same input pins,
//! differing only in node numbering and fanin order (the output of
//! `Aig::permute_rebuild`, a re-serialized netlist dump, a tool that
//! emits gates in a different topological order). Canonicalization
//! erases exactly those degrees of freedom and nothing else — input
//! indices and output order are part of the circuit's interface and
//! stay fixed. (Re-*associated* variants such as `Aig::shuffle_rebuild`
//! are different gate structures and deliberately key separately: the
//! cache answers "seen this netlist before?", not "seen this
//! function?" — the latter question is the engine's job.)
//!
//! The construction is two passes:
//!
//! 1. **Signature pass** (bottom-up): every node gets a structural hash
//!    over its kind — inputs hash their index, AND gates hash the
//!    *unordered* pair of fanin edge signatures (edge = node signature
//!    mixed with the complement bit). Node ids never enter a signature,
//!    so isomorphic graphs produce identical signature multisets.
//! 2. **Rebuild pass**: a DFS from the outputs in interface order,
//!    visiting each gate's fanins in ascending edge-signature order,
//!    emits gates into a fresh hash-consed AIG. Creation order is
//!    thereby a pure function of the logic, which pins the node
//!    numbering of the result.
//!
//! A signature collision between the two fanins of one gate falls back
//! to the original fanin order for that gate — the rebuild is then
//! still correct, merely not guaranteed canonical for that one pair,
//! and the cache's replay validation keeps even a full key collision
//! harmless (the certificate simply fails to re-bind and the query is
//! re-proved).

use aig::{Aig, Node, NodeId};
use obs::hash::fnv1a64;

/// Mixes two words with the FNV prime — cheap, deterministic, and good
/// enough to keep unrelated cones apart (collisions only cost cache
/// hit rate, never correctness).
fn mix(a: u64, b: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    (a ^ b.rotate_left(31)).wrapping_mul(FNV_PRIME)
}

const TAG_CONST: u64 = 0x9e37_79b9_7f4a_7c15;
const TAG_INPUT: u64 = 0xc2b2_ae3d_27d4_eb4f;
const TAG_AND: u64 = 0x1656_67b1_9e37_79f9;
const TAG_COMPL: u64 = 0x27d4_eb2f_1656_67c5;

/// Per-node structural signatures, bottom-up. Fanins precede their
/// gates in an [`Aig`], so one forward pass suffices.
fn signatures(g: &Aig) -> Vec<u64> {
    let mut sig = vec![0u64; g.len()];
    for (id, node) in g.iter() {
        sig[id.as_usize()] = match *node {
            Node::Const => TAG_CONST,
            Node::Input { index } => mix(TAG_INPUT, u64::from(index)),
            Node::And { a, b } => {
                let (ea, eb) = (edge_sig(&sig, a), edge_sig(&sig, b));
                let (lo, hi) = if ea <= eb { (ea, eb) } else { (eb, ea) };
                mix(mix(TAG_AND, lo), hi)
            }
        };
    }
    sig
}

fn edge_sig(sig: &[u64], e: aig::Lit) -> u64 {
    let s = sig[e.node().as_usize()];
    if e.is_complemented() {
        mix(TAG_COMPL, s)
    } else {
        s
    }
}

/// Rewrites `g` into its structural normal form: the same gate
/// structure over the same interface, with node numbering and fanin
/// order derived from the logic alone. Isomorphic inputs (e.g.
/// `g.permute_rebuild(seed)` for any seed) produce byte-identical
/// normal forms.
///
/// # Example
///
/// ```
/// use aig::gen::ripple_carry_adder;
/// let a = ripple_carry_adder(8);
/// let renumbered = a.permute_rebuild(42);
/// let mut x = Vec::new();
/// let mut y = Vec::new();
/// aig::aiger::write_ascii(&cache::canonical_form(&a), &mut x).unwrap();
/// aig::aiger::write_ascii(&cache::canonical_form(&renumbered), &mut y).unwrap();
/// assert_eq!(x, y);
/// ```
pub fn canonical_form(g: &Aig) -> Aig {
    let sig = signatures(g);
    let mut out = Aig::with_capacity(g.len());
    let inputs = out.add_inputs(g.num_inputs());
    // map[g node] -> out literal (positive phase of the rebuilt node).
    let mut map: Vec<Option<aig::Lit>> = vec![None; g.len()];
    map[NodeId::CONST.as_usize()] = Some(aig::Lit::FALSE);
    for (id, node) in g.iter() {
        if let Node::Input { index } = *node {
            map[id.as_usize()] = Some(inputs[index as usize]);
        }
    }
    // Iterative DFS from each output in interface order; fanins are
    // visited in ascending edge-signature order so gate creation order
    // is id-independent.
    let mut stack: Vec<NodeId> = Vec::new();
    for o in g.outputs() {
        stack.push(o.node());
        while let Some(&n) = stack.last() {
            if map[n.as_usize()].is_some() {
                stack.pop();
                continue;
            }
            let (fa, fb) = g.node(n).fanins().expect("unmapped nodes are AND gates");
            let (first, second) = ordered_fanins(&sig, fa, fb);
            let ma = map[first.node().as_usize()];
            let mb = map[second.node().as_usize()];
            match (ma, mb) {
                (Some(la), Some(lb)) => {
                    let la = la.xor_complement(first.is_complemented());
                    let lb = lb.xor_complement(second.is_complemented());
                    map[n.as_usize()] = Some(out.and(la, lb));
                    stack.pop();
                }
                _ => {
                    if mb.is_none() {
                        stack.push(second.node());
                    }
                    if ma.is_none() {
                        stack.push(first.node());
                    }
                }
            }
        }
    }
    for o in g.outputs() {
        let l = map[o.node().as_usize()].expect("output cone was built");
        out.add_output(l.xor_complement(o.is_complemented()));
    }
    out
}

/// Fanin visit order: ascending edge signature, original order on tie.
fn ordered_fanins(sig: &[u64], a: aig::Lit, b: aig::Lit) -> (aig::Lit, aig::Lit) {
    if edge_sig(sig, a) <= edge_sig(sig, b) {
        (a, b)
    } else {
        (b, a)
    }
}

/// A 128-bit structural cache key, rendered as 32 hex digits — stable
/// across processes and usable directly as a spill file name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey(String);

impl CacheKey {
    /// The key as a hex string.
    pub fn as_hex(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The structural cache key of an (already canonical) circuit pair:
/// 128 bits of FNV-1a over the canonical AIGER bytes of both circuits,
/// from two passes with distinct domain-separation prefixes.
pub fn cache_key(canon_a: &Aig, canon_b: &Aig) -> CacheKey {
    let mut bytes = Vec::new();
    aig::aiger::write_ascii(canon_a, &mut bytes).expect("write to Vec cannot fail");
    bytes.push(b'|');
    aig::aiger::write_ascii(canon_b, &mut bytes).expect("write to Vec cannot fail");
    let lo = fnv1a64(&bytes);
    bytes.push(0xFF);
    let hi = fnv1a64(&bytes);
    CacheKey(format!("{hi:016x}{lo:016x}"))
}

/// A query pair in canonical form, with its cache key.
///
/// The service proves the *canonical* pair rather than the raw one:
/// verdicts transfer directly (canonicalization preserves the
/// input/output interface, so a counterexample pattern or an
/// equivalence verdict means the same thing for the raw pair), and the
/// engine's determinism then makes certificates byte-identical across
/// isomorphic queries — a cache hit returns the very bytes a fresh
/// proof would have produced.
#[derive(Clone, Debug)]
pub struct CanonicalPair {
    /// Canonical form of the first circuit.
    pub a: Aig,
    /// Canonical form of the second circuit.
    pub b: Aig,
    /// Structural key of the pair.
    pub key: CacheKey,
}

impl CanonicalPair {
    /// Canonicalizes a query pair and derives its key.
    pub fn new(a: &Aig, b: &Aig) -> Self {
        let a = canonical_form(a);
        let b = canonical_form(b);
        let key = cache_key(&a, &b);
        CanonicalPair { a, b, key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{kogge_stone_adder, mutate, ripple_carry_adder};

    fn ascii(g: &Aig) -> Vec<u8> {
        let mut v = Vec::new();
        aig::aiger::write_ascii(g, &mut v).unwrap();
        v
    }

    #[test]
    fn canonical_form_preserves_function() {
        let g = kogge_stone_adder(6);
        let c = canonical_form(&g);
        assert_eq!(c.num_inputs(), g.num_inputs());
        assert_eq!(c.num_outputs(), g.num_outputs());
        assert_eq!(aig::sim::exhaustive_diff(&g, &c, 13), None);
    }

    #[test]
    fn isomorphic_graphs_share_canonical_bytes() {
        let g = kogge_stone_adder(7);
        let base = ascii(&canonical_form(&g));
        let mut changed = 0;
        for seed in [3u64, 17, 92] {
            let renumbered = g.permute_rebuild(seed);
            if ascii(&g) != ascii(&renumbered) {
                changed += 1;
            }
            assert_eq!(
                base,
                ascii(&canonical_form(&renumbered)),
                "canonical form erases the renumbering (seed {seed})"
            );
        }
        assert!(changed > 0, "at least one permutation moved the bytes");
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let g = kogge_stone_adder(5);
        let once = canonical_form(&g);
        let twice = canonical_form(&once);
        assert_eq!(ascii(&once), ascii(&twice));
    }

    #[test]
    fn near_miss_changes_the_key() {
        let a = ripple_carry_adder(6);
        let b = kogge_stone_adder(6);
        let base = CanonicalPair::new(&a, &b).key;
        // Isomorphic restatement of the same pair: same key.
        assert_eq!(
            CanonicalPair::new(&a.permute_rebuild(5), &b.permute_rebuild(9)).key,
            base
        );
        // One-gate mutants: different logic, different key.
        let mut mutants = 0;
        for seed in 0..20 {
            let Some(m) = mutate(&b, seed) else { continue };
            if aig::sim::exhaustive_diff(&b, &m, 13).is_none() {
                continue; // mutation landed on redundant logic
            }
            mutants += 1;
            assert_ne!(
                CanonicalPair::new(&a, &m).key,
                base,
                "one-gate mutant (seed {seed}) must miss"
            );
        }
        assert!(mutants > 0, "at least one differing mutant exercised");
    }
}
