//! Offline vendored mini-`rand`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small, self-contained implementation of the subset
//! of the `rand` 0.8 API it actually uses: [`rngs::SmallRng`] (a
//! xoshiro256++ generator seeded via splitmix64), the [`Rng`] /
//! [`SeedableRng`] traits, uniform `gen_range` over integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The streams produced here do **not** match upstream `rand`; every
//! consumer in this workspace only relies on determinism for a fixed
//! seed, which this crate guarantees.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that [`Rng::gen_range`] can sample over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high > low`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `high >= low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                low + (uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased uniform draw from `[0, bound)` by rejection (Lemire-style
/// widening multiply). `bound > 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the stand-in for
    /// `rand::rngs::SmallRng`). Deterministic for a fixed seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    /// Alias so `rand::rngs::StdRng` callers keep compiling; same
    /// generator as [`SmallRng`] in this vendored build.
    pub type StdRng = SmallRng;
}

/// Slice sampling and shuffling (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
