//! Bundle emission and the paired adversarial checker.
//!
//! [`prove_and_emit`] runs one journaled engine check and persists every
//! artifact class the pipeline produces — AIGER inputs, the miter
//! DIMACS, the TraceCheck and DRAT proofs, the certificate, and the
//! write-ahead journal — plus a `manifest.json` recording an FNV-1a
//! fingerprint per file. [`check_bundle`] is the paired checker: it
//! re-reads the directory, verifies every fingerprint, re-parses every
//! artifact, and cross-links them (proof ↔ CNF ↔ certificate ↔ journal
//! verdict), mapping each defect to a stable lint code. The checker's
//! contract under fault injection is strict: corrupted bytes are
//! *rejected with a diagnostic*, never accepted, never a panic.

use aig::Aig;
use cec::{miter_cnf, CecError, CecOptions, CecOutcome, CrashPoint, Durable, Miter, Prover};
use lint::{
    lint_bundle, lint_drat, lint_journal, read_tracecheck, Artifact, Bundle, CertificateInfo,
    LintOptions, Report, XB010, XB011,
};
use obs::hash::fnv1a64_hex;
use obs::json::{self, Value};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Cursor};
use std::path::{Path, PathBuf};

/// Manifest format version written in `manifest.json`.
pub const MANIFEST_FORMAT: u64 = 1;

/// Every artifact file name a bundle may contain (the manifest itself
/// is not an artifact — it is the fingerprint ledger *over* them).
pub const ARTIFACTS: &[&str] = &[
    "a.aag",
    "b.aag",
    "miter.cnf",
    "proof.tc",
    "proof.drat",
    "cert.cert",
    "run.journal",
];

/// File name of the manifest.
pub const MANIFEST: &str = "manifest.json";

/// The fixed file layout of one bundle directory.
#[derive(Clone, Debug)]
pub struct BundlePaths {
    /// The bundle directory.
    pub dir: PathBuf,
}

impl BundlePaths {
    /// Wraps a bundle directory.
    pub fn new(dir: impl Into<PathBuf>) -> BundlePaths {
        BundlePaths { dir: dir.into() }
    }

    /// Path of a named file inside the bundle.
    #[must_use]
    pub fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Circuit A, ASCII AIGER.
    #[must_use]
    pub fn a(&self) -> PathBuf {
        self.file("a.aag")
    }

    /// Circuit B, ASCII AIGER.
    #[must_use]
    pub fn b(&self) -> PathBuf {
        self.file("b.aag")
    }

    /// The miter's Tseitin CNF, DIMACS.
    #[must_use]
    pub fn cnf(&self) -> PathBuf {
        self.file("miter.cnf")
    }

    /// The recorded refutation, TraceCheck.
    #[must_use]
    pub fn proof(&self) -> PathBuf {
        self.file("proof.tc")
    }

    /// The recorded refutation, DRAT.
    #[must_use]
    pub fn drat(&self) -> PathBuf {
        self.file("proof.drat")
    }

    /// Certificate metadata.
    #[must_use]
    pub fn certificate(&self) -> PathBuf {
        self.file("cert.cert")
    }

    /// The write-ahead run-state journal.
    #[must_use]
    pub fn journal(&self) -> PathBuf {
        self.file("run.journal")
    }

    /// The fingerprint manifest.
    #[must_use]
    pub fn manifest(&self) -> PathBuf {
        self.file(MANIFEST)
    }
}

/// Why [`prove_and_emit`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmitError {
    /// The engine run itself failed (including injected crashes, which
    /// surface as [`CecError::CrashInjected`]).
    Engine(CecError),
    /// Writing an artifact or the manifest failed.
    Io(String),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Engine(e) => write!(f, "{e}"),
            EmitError::Io(msg) => write!(f, "bundle i/o error: {msg}"),
        }
    }
}

impl std::error::Error for EmitError {}

impl From<CecError> for EmitError {
    fn from(e: CecError) -> EmitError {
        EmitError::Engine(e)
    }
}

fn io_err(what: &str, e: &io::Error) -> EmitError {
    EmitError::Io(format!("{what}: {e}"))
}

/// Writes `manifest.json` for the named files (hashing each from disk).
fn write_manifest(paths: &BundlePaths, verdict: &str, files: &[&str]) -> Result<(), EmitError> {
    let mut entries = Vec::with_capacity(files.len());
    for name in files {
        let bytes = fs::read(paths.file(name)).map_err(|e| io_err(&format!("read {name}"), &e))?;
        entries.push(Value::Object(vec![
            ("file".into(), Value::str(*name)),
            ("fnv".into(), Value::Str(fnv1a64_hex(&bytes))),
        ]));
    }
    let doc = Value::Object(vec![
        ("format".into(), Value::U64(MANIFEST_FORMAT)),
        ("verdict".into(), Value::str(verdict)),
        ("entries".into(), Value::Array(entries)),
    ]);
    fs::write(paths.manifest(), format!("{doc}\n")).map_err(|e| io_err("write manifest.json", &e))
}

/// Runs one journaled engine check in `dir` and persists the full
/// artifact bundle plus its manifest.
///
/// With `resume = false` a fresh journal is started; with `resume =
/// true` the existing `run.journal` is validated and continued, so a
/// crashed emission can be finished by calling again. An armed `crash`
/// fires at its phase checkpoint (see [`cec::CrashPoint`]); the journal
/// and the already-written inputs survive it.
///
/// # Errors
///
/// [`EmitError::Engine`] for engine failures (crash injection included),
/// [`EmitError::Io`] for artifact write failures.
pub fn prove_and_emit(
    dir: &Path,
    a: &Aig,
    b: &Aig,
    options: &CecOptions,
    crash: Option<CrashPoint>,
    resume: bool,
) -> Result<CecOutcome, EmitError> {
    let paths = BundlePaths::new(dir);
    fs::create_dir_all(dir).map_err(|e| io_err("create bundle dir", &e))?;
    let write_aig = |path: &Path, g: &Aig| -> Result<(), EmitError> {
        let mut bytes = Vec::new();
        aig::aiger::write_ascii(g, &mut bytes).expect("write to Vec cannot fail");
        fs::write(path, bytes).map_err(|e| io_err(&format!("write {}", path.display()), &e))
    };
    write_aig(&paths.a(), a)?;
    write_aig(&paths.b(), b)?;

    let mut durable = if resume {
        Durable::resume(&paths.journal(), options, a, b)?
    } else {
        Durable::begin(&paths.journal(), options, a, b)?
    };
    if let Some(c) = crash {
        durable.arm(c);
    }
    let outcome = Prover::new(options.clone()).prove_durable(a, b, &mut durable)?;
    drop(durable);

    let miter = Miter::build(a, b, options.share_structure);
    let cnf = miter_cnf(&miter);
    let mut bytes = Vec::new();
    cnf::dimacs::write(&cnf, &mut bytes).expect("write to Vec cannot fail");
    fs::write(paths.cnf(), bytes).map_err(|e| io_err("write miter.cnf", &e))?;

    let mut files = vec!["a.aag", "b.aag", "miter.cnf", "run.journal"];
    let verdict = if outcome.is_equivalent() {
        "equivalent"
    } else {
        "inequivalent"
    };
    if let Some(cert) = outcome.certificate() {
        if let Some(p) = &cert.proof {
            let mut bytes = Vec::new();
            proof::export::write_tracecheck(p, &mut bytes).expect("write to Vec cannot fail");
            fs::write(paths.proof(), bytes).map_err(|e| io_err("write proof.tc", &e))?;
            let mut bytes = Vec::new();
            proof::export::write_drat(p, &mut bytes).expect("write to Vec cannot fail");
            fs::write(paths.drat(), bytes).map_err(|e| io_err("write proof.drat", &e))?;
            let mut bytes = Vec::new();
            cert.info()
                .write(&mut bytes)
                .expect("write to Vec cannot fail");
            fs::write(paths.certificate(), bytes).map_err(|e| io_err("write cert.cert", &e))?;
            files.extend(["proof.tc", "proof.drat", "cert.cert"]);
        }
    }
    write_manifest(&paths, verdict, &files)?;
    Ok(outcome)
}

/// Verifies the manifest and every listed fingerprint. Hash-verified
/// artifact bytes land in `verified`; the return value is the
/// manifest's verdict claim (`Some(true)` = equivalent) when the
/// manifest itself was intact enough to state one.
fn check_manifest(
    paths: &BundlePaths,
    report: &mut Report,
    cap: usize,
    verified: &mut HashMap<&'static str, Vec<u8>>,
) -> Option<bool> {
    let text = match fs::read_to_string(paths.manifest()) {
        Ok(t) => t,
        Err(e) => {
            report.emit(XB011, None, cap, || {
                format!("manifest.json unreadable: {e}")
            });
            return None;
        }
    };
    let doc = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            report.emit(XB011, None, cap, || format!("manifest.json malformed: {e}"));
            return None;
        }
    };
    if doc.get("format").and_then(Value::as_u64) != Some(MANIFEST_FORMAT) {
        report.emit(XB011, None, cap, || {
            format!("manifest format is not {MANIFEST_FORMAT}")
        });
        return None;
    }
    let verdict = match doc.get("verdict").and_then(Value::as_str) {
        Some("equivalent") => Some(true),
        Some("inequivalent") => Some(false),
        other => {
            let other = other.map(str::to_string);
            report.emit(XB011, None, cap, || {
                format!("manifest verdict is {other:?}, not equivalent/inequivalent")
            });
            None
        }
    };
    let Some(entries) = doc.get("entries").and_then(Value::as_array) else {
        report.emit(XB011, None, cap, || "manifest has no entries array".into());
        return verdict;
    };
    let mut listed: Vec<&'static str> = Vec::new();
    for entry in entries {
        let file = entry.get("file").and_then(Value::as_str);
        let fnv = entry.get("fnv").and_then(Value::as_str);
        let (Some(file), Some(fnv)) = (file, fnv) else {
            report.emit(XB011, None, cap, || {
                "manifest entry lacks file/fnv fields".into()
            });
            continue;
        };
        // Resolve to the static artifact name: the layout is closed, so
        // anything else is a manifest defect (and a path-escape guard —
        // entries can never name files outside the bundle).
        let Some(name) = ARTIFACTS.iter().find(|n| **n == file).copied() else {
            let file = file.to_string();
            report.emit(XB011, None, cap, || {
                format!("manifest names unknown artifact `{file}`")
            });
            continue;
        };
        listed.push(name);
        match fs::read(paths.file(name)) {
            Err(e) => report.emit(XB011, None, cap, || {
                format!("manifest names absent file `{name}`: {e}")
            }),
            Ok(bytes) => {
                let actual = fnv1a64_hex(&bytes);
                if actual == fnv {
                    verified.insert(name, bytes);
                } else {
                    let recorded = fnv.to_string();
                    report.emit(XB010, None, cap, || {
                        format!(
                            "`{name}`: content hash {actual} disagrees with \
                             manifest ({recorded})"
                        )
                    });
                }
            }
        }
    }
    for name in ARTIFACTS {
        if !listed.contains(name) && paths.file(name).exists() {
            report.emit(XB011, None, cap, || {
                format!("artifact `{name}` is on disk but not in the manifest")
            });
        }
    }
    verdict
}

/// Checks the bundle in `dir`: manifest fingerprints, per-artifact
/// parses and lints, and cross-artifact consistency. Never panics and
/// never errors — every defect, including an unreadable directory,
/// becomes a diagnostic in the returned report.
#[must_use]
pub fn check_bundle(dir: &Path, opts: &LintOptions) -> Report {
    let paths = BundlePaths::new(dir);
    let mut report = Report::new(Artifact::Bundle);
    let cap = opts.max_per_lint;
    let mut verified: HashMap<&'static str, Vec<u8>> = HashMap::new();
    let manifest_verdict = check_manifest(&paths, &mut report, cap, &mut verified);

    // Per-artifact parses. A hash-verified artifact that still fails to
    // parse means the *producer* wrote garbage — a bundle-level defect.
    let mut unparseable: Vec<(&'static str, String)> = Vec::new();
    let read_aig = |name: &'static str, sink: &mut Vec<(&'static str, String)>| {
        let bytes = verified.get(name)?;
        match aig::aiger::read(bytes.as_slice()) {
            Ok(g) => Some(g),
            Err(e) => {
                sink.push((name, e.to_string()));
                None
            }
        }
    };
    let a = read_aig("a.aag", &mut unparseable);
    let b = read_aig("b.aag", &mut unparseable);
    let formula =
        verified
            .get("miter.cnf")
            .and_then(|bytes| match cnf::dimacs::read(Cursor::new(bytes)) {
                Ok(f) => Some(f),
                Err(e) => {
                    unparseable.push(("miter.cnf", e.to_string()));
                    None
                }
            });
    let proof = verified.get("proof.tc").and_then(|bytes| {
        let (tc_report, p) =
            read_tracecheck(Cursor::new(bytes), opts).expect("reading from memory cannot fail");
        report.absorb(tc_report);
        p
    });
    if let Some(bytes) = verified.get("proof.drat") {
        let drat_report = lint_drat(Cursor::new(bytes), formula.as_ref(), opts)
            .expect("reading from memory cannot fail");
        report.absorb(drat_report);
    }
    let certificate = verified.get("cert.cert").and_then(|bytes| {
        let text = match std::str::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => {
                unparseable.push(("cert.cert", e.to_string()));
                return None;
            }
        };
        match CertificateInfo::parse(text) {
            Ok(info) => Some(info),
            Err(e) => {
                unparseable.push(("cert.cert", e));
                None
            }
        }
    });
    let journal_records = verified.get("run.journal").and_then(|bytes| {
        let jn_report =
            lint_journal(Cursor::new(bytes), opts).expect("reading from memory cannot fail");
        report.absorb(jn_report);
        obs::journal::read_journal(Cursor::new(bytes))
            .ok()
            .map(|j| j.records)
    });
    for (name, why) in unparseable {
        report.emit(XB011, None, cap, || {
            format!("`{name}` is unparseable despite a matching hash: {why}")
        });
    }

    // Cross-artifact binding. The miter is rebuilt from the AIGER pair
    // with the structural-sharing flag the journal header recorded (the
    // flag changes which Tseitin clauses exist).
    let header = journal_records.as_ref().and_then(|r| {
        r.first()
            .filter(|rec| rec.body.get("type").and_then(Value::as_str) == Some("header"))
            .map(|rec| &rec.body)
    });
    let share = header
        .and_then(|h| h.get("share_structure"))
        .is_none_or(|v| *v == Value::Bool(true));
    let miter_graph = match (&a, &b) {
        (Some(a), Some(b)) => Some(Miter::build(a, b, share).graph),
        _ => None,
    };
    report.absorb(lint_bundle(
        &Bundle {
            aig: miter_graph.as_ref(),
            cnf: formula.as_ref(),
            proof: proof.as_ref(),
            certificate: certificate.as_ref(),
        },
        opts,
    ));

    // The journal's verdict record seals the run: its equivalence flag,
    // proof fingerprint, and counterexample must all still hold.
    let verdict_rec = journal_records.as_ref().and_then(|r| {
        r.iter()
            .rev()
            .find(|rec| rec.body.get("type").and_then(Value::as_str) == Some("verdict"))
            .map(|rec| &rec.body)
    });
    if let Some(v) = verdict_rec {
        let equivalent = v.get("equivalent").map(|b| *b == Value::Bool(true));
        if let (Some(journaled), Some(claimed)) = (equivalent, manifest_verdict) {
            if journaled != claimed {
                report.emit(XB011, None, cap, || {
                    format!(
                        "manifest verdict ({}) disagrees with the journal ({})",
                        if claimed {
                            "equivalent"
                        } else {
                            "inequivalent"
                        },
                        if journaled {
                            "equivalent"
                        } else {
                            "inequivalent"
                        },
                    )
                });
            }
        }
        if let (Some(hash), Some(bytes)) = (
            v.get("proof_hash").and_then(Value::as_str),
            verified.get("proof.tc"),
        ) {
            let actual = fnv1a64_hex(bytes);
            if actual != hash {
                let recorded = hash.to_string();
                report.emit(XB010, None, cap, || {
                    format!(
                        "`proof.tc`: content hash {actual} disagrees with the \
                         journal's verdict record ({recorded})"
                    )
                });
            }
        }
        if let Some(pattern) = v.get("pattern").and_then(Value::as_array) {
            let bools: Vec<bool> = pattern.iter().map(|b| *b == Value::Bool(true)).collect();
            if let (Some(a), Some(b)) = (&a, &b) {
                if bools.len() == a.num_inputs() && bools.len() == b.num_inputs() {
                    if a.evaluate(&bools) == b.evaluate(&bools) {
                        report.emit(XB011, None, cap, || {
                            "the journaled counterexample does not distinguish the \
                             circuits"
                                .into()
                        });
                    }
                } else {
                    report.emit(XB011, None, cap, || {
                        format!(
                            "the journaled counterexample has {} bits for {}-input \
                             circuits",
                            bools.len(),
                            a.num_inputs()
                        )
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt, FaultMode};
    use aig::gen;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chaos-bundle-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn options() -> CecOptions {
        CecOptions::default()
    }

    #[test]
    fn emitted_bundle_checks_clean() {
        let dir = tmp("clean");
        let a = gen::ripple_carry_adder(4);
        let b = gen::carry_lookahead_adder(4);
        let outcome = prove_and_emit(&dir, &a, &b, &options(), None, false).unwrap();
        assert!(outcome.is_equivalent());
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inequivalent_bundle_checks_clean_and_reverifies_the_counterexample() {
        let dir = tmp("ineq");
        let a = gen::parity_chain(8);
        let b = gen::mutate(&a, 7).expect("mutant");
        let outcome = prove_and_emit(&dir, &a, &b, &options(), None, false).unwrap();
        assert!(!outcome.is_equivalent());
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.is_clean(), "{:?}", r.diagnostics());

        // Forge the verdict: claim equivalence over the SAT journal.
        let paths = BundlePaths::new(&dir);
        let text = fs::read_to_string(paths.manifest()).unwrap();
        fs::write(
            paths.manifest(),
            text.replace("\"inequivalent\"", "\"equivalent\""),
        )
        .unwrap();
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.has("XB011"), "{:?}", r.diagnostics());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_flipped_artifact_is_rejected() {
        let dir = tmp("flip");
        let a = gen::ripple_carry_adder(4);
        let b = gen::kogge_stone_adder(4);
        prove_and_emit(&dir, &a, &b, &options(), None, false).unwrap();
        let paths = BundlePaths::new(&dir);
        for name in ARTIFACTS {
            let path = paths.file(name);
            let original = fs::read(&path).unwrap();
            let mut bytes = original.clone();
            corrupt(&mut bytes, FaultMode::Flip, 1);
            fs::write(&path, &bytes).unwrap();
            let r = check_bundle(&dir, &LintOptions::default());
            assert!(!r.is_clean(), "flip in {name} accepted");
            assert!(r.has("XB010"), "flip in {name}: {:?}", r.diagnostics());
            fs::write(&path, &original).unwrap();
        }
        // A corrupted manifest itself is rejected too.
        let original = fs::read(paths.manifest()).unwrap();
        let mut bytes = original.clone();
        corrupt(&mut bytes, FaultMode::Truncate, 3);
        fs::write(paths.manifest(), &bytes).unwrap();
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(!r.is_clean(), "truncated manifest accepted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_unlisted_files_are_manifest_defects() {
        let dir = tmp("missing");
        let a = gen::ripple_carry_adder(3);
        let b = gen::brent_kung_adder(3);
        prove_and_emit(&dir, &a, &b, &options(), None, false).unwrap();
        let paths = BundlePaths::new(&dir);

        let saved = fs::read(paths.certificate()).unwrap();
        fs::remove_file(paths.certificate()).unwrap();
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.has("XB011"), "{:?}", r.diagnostics());
        fs::write(paths.certificate(), &saved).unwrap();

        // Hide an artifact from the manifest: on-disk but unlisted.
        let text = fs::read_to_string(paths.manifest()).unwrap();
        let doc = json::parse(&text).unwrap();
        let Value::Object(mut members) = doc else {
            panic!("manifest is an object")
        };
        for (k, v) in &mut members {
            if k == "entries" {
                let Value::Array(entries) = v else {
                    panic!("entries is an array")
                };
                entries.retain(|e| e.get("file").and_then(Value::as_str) != Some("cert.cert"));
            }
        }
        fs::write(paths.manifest(), format!("{}\n", Value::Object(members))).unwrap();
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.has("XB011"), "{:?}", r.diagnostics());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_during_emit_resumes_to_a_clean_bundle() {
        let dir = tmp("crash");
        let a = gen::popcount_serial(6);
        let b = gen::popcount_csa(6);
        let crash = CrashPoint::parse("sweep", cec::CrashMode::Error).unwrap();
        let err = prove_and_emit(&dir, &a, &b, &options(), Some(crash), false).unwrap_err();
        assert!(
            matches!(err, EmitError::Engine(CecError::CrashInjected { .. })),
            "{err}"
        );
        // No manifest yet: the checker rejects the half-written bundle.
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(!r.is_clean());

        let outcome = prove_and_emit(&dir, &a, &b, &options(), None, true).unwrap();
        assert!(outcome.is_equivalent());
        let r = check_bundle(&dir, &LintOptions::default());
        assert!(r.is_clean(), "{:?}", r.diagnostics());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checker_survives_a_nonexistent_directory() {
        let r = check_bundle(
            Path::new("/nonexistent/chaos-bundle"),
            &LintOptions::default(),
        );
        assert!(!r.is_clean());
        assert!(r.has("XB011"));
    }
}
