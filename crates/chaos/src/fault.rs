//! Seeded fault injection over artifact bytes.
//!
//! Every corruption is a pure function of `(bytes, mode, seed)`, so a
//! failing seed reproduces exactly — the same discipline the engine
//! applies to simulation patterns.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The corruption classes the fault matrix exercises per artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Flip exactly one bit.
    Flip,
    /// Flip 2–8 bits at independent positions.
    MultiFlip,
    /// Cut the file short (possibly to zero bytes).
    Truncate,
}

/// Every fault mode, for matrix iteration.
pub const FAULT_MODES: &[FaultMode] = &[FaultMode::Flip, FaultMode::MultiFlip, FaultMode::Truncate];

impl FaultMode {
    /// Parses the CLI spelling (`flip`, `multiflip`, `truncate`).
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "flip" => Some(FaultMode::Flip),
            "multiflip" => Some(FaultMode::MultiFlip),
            "truncate" => Some(FaultMode::Truncate),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultMode::Flip => "flip",
            FaultMode::MultiFlip => "multiflip",
            FaultMode::Truncate => "truncate",
        }
    }
}

impl fmt::Display for FaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Corrupts `bytes` in place; returns a human-readable description of
/// what was done. Guaranteed to change the byte string (an empty input
/// gains a byte rather than staying empty).
pub fn corrupt(bytes: &mut Vec<u8>, mode: FaultMode, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    if bytes.is_empty() {
        bytes.push(0x01);
        return "appended 0x01 to empty file".into();
    }
    match mode {
        FaultMode::Flip => {
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1 << bit;
            format!("flipped bit {bit} of byte {byte}")
        }
        FaultMode::MultiFlip => {
            // Distinct (byte, bit) targets: repeating a flip would undo
            // it, and on tiny files that can cancel back to the
            // original bytes — which would break the "always changes"
            // contract the fault matrix relies on.
            let flips = rng.gen_range(2..=8usize).min(bytes.len() * 8);
            let mut spots: Vec<(usize, u32)> = Vec::with_capacity(flips);
            while spots.len() < flips {
                let spot = (rng.gen_range(0..bytes.len()), rng.gen_range(0..8u32));
                if !spots.contains(&spot) {
                    spots.push(spot);
                }
            }
            let mut labels = Vec::with_capacity(flips);
            for (byte, bit) in spots {
                bytes[byte] ^= 1 << bit;
                labels.push(format!("{byte}:{bit}"));
            }
            format!("flipped bits at {}", labels.join(", "))
        }
        FaultMode::Truncate => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
            format!("truncated to {keep} bytes")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_always_changes_the_bytes() {
        let original: Vec<u8> = (0u8..=255).collect();
        for mode in FAULT_MODES {
            for seed in 0..100 {
                let mut bytes = original.clone();
                let what = corrupt(&mut bytes, *mode, seed);
                assert_ne!(bytes, original, "{mode} seed {seed}: {what}");
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let original = b"deterministic fault injection".to_vec();
        for mode in FAULT_MODES {
            let mut x = original.clone();
            let mut y = original.clone();
            let dx = corrupt(&mut x, *mode, 42);
            let dy = corrupt(&mut y, *mode, 42);
            assert_eq!(x, y);
            assert_eq!(dx, dy);
        }
    }

    #[test]
    fn multiflip_changes_even_one_byte_files() {
        // Repeated flips on the same bit would cancel; the distinct-spot
        // discipline means even a 1-byte file always ends up different.
        let original = b"x".to_vec();
        for seed in 0..200 {
            let mut b = original.clone();
            let what = corrupt(&mut b, FaultMode::MultiFlip, seed);
            assert_ne!(b, original, "seed {seed}: {what}");
        }
    }

    #[test]
    fn empty_input_still_changes() {
        let mut b = Vec::new();
        corrupt(&mut b, FaultMode::Truncate, 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in FAULT_MODES {
            assert_eq!(FaultMode::parse(mode.label()), Some(*mode));
        }
        assert_eq!(FaultMode::parse("warp"), None);
    }
}
