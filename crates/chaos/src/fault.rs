//! Seeded fault injection over artifact bytes.
//!
//! Every corruption is a pure function of `(bytes, mode, seed)`, so a
//! failing seed reproduces exactly — the same discipline the engine
//! applies to simulation patterns.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The corruption classes the fault matrix exercises per artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Flip exactly one bit.
    Flip,
    /// Flip 2–8 bits at independent positions.
    MultiFlip,
    /// Cut the file short (possibly to zero bytes).
    Truncate,
    /// Tear one *interior* line in half while keeping everything after
    /// it: the torn-write shape a crashed-then-continued journal writer
    /// would leave. Unlike [`FaultMode::Truncate`], later records
    /// survive, so a reader must report mid-file damage as corruption
    /// rather than a benign truncated tail.
    TornRecord,
}

/// Every fault mode, for matrix iteration.
pub const FAULT_MODES: &[FaultMode] = &[
    FaultMode::Flip,
    FaultMode::MultiFlip,
    FaultMode::Truncate,
    FaultMode::TornRecord,
];

impl FaultMode {
    /// Parses the CLI spelling (`flip`, `multiflip`, `truncate`,
    /// `torn-record`).
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "flip" => Some(FaultMode::Flip),
            "multiflip" => Some(FaultMode::MultiFlip),
            "truncate" => Some(FaultMode::Truncate),
            "torn-record" => Some(FaultMode::TornRecord),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultMode::Flip => "flip",
            FaultMode::MultiFlip => "multiflip",
            FaultMode::Truncate => "truncate",
            FaultMode::TornRecord => "torn-record",
        }
    }
}

impl fmt::Display for FaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Corrupts `bytes` in place; returns a human-readable description of
/// what was done. Guaranteed to change the byte string (an empty input
/// gains a byte rather than staying empty).
pub fn corrupt(bytes: &mut Vec<u8>, mode: FaultMode, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    if bytes.is_empty() {
        bytes.push(0x01);
        return "appended 0x01 to empty file".into();
    }
    match mode {
        FaultMode::Flip => {
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1 << bit;
            format!("flipped bit {bit} of byte {byte}")
        }
        FaultMode::MultiFlip => {
            // Distinct (byte, bit) targets: repeating a flip would undo
            // it, and on tiny files that can cancel back to the
            // original bytes — which would break the "always changes"
            // contract the fault matrix relies on.
            let flips = rng.gen_range(2..=8usize).min(bytes.len() * 8);
            let mut spots: Vec<(usize, u32)> = Vec::with_capacity(flips);
            while spots.len() < flips {
                let spot = (rng.gen_range(0..bytes.len()), rng.gen_range(0..8u32));
                if !spots.contains(&spot) {
                    spots.push(spot);
                }
            }
            let mut labels = Vec::with_capacity(flips);
            for (byte, bit) in spots {
                bytes[byte] ^= 1 << bit;
                labels.push(format!("{byte}:{bit}"));
            }
            format!("flipped bits at {}", labels.join(", "))
        }
        FaultMode::Truncate => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
            format!("truncated to {keep} bytes")
        }
        FaultMode::TornRecord => {
            // Non-empty lines that are followed by more data: tearing
            // one of those leaves damage *inside* the file, which a
            // reader must distinguish from a benignly truncated tail.
            let mut lines: Vec<(usize, usize)> = Vec::new();
            let mut start = 0usize;
            for (i, &b) in bytes.iter().enumerate() {
                if b == b'\n' {
                    if i + 1 < bytes.len() && i > start {
                        lines.push((start, i - start));
                    }
                    start = i + 1;
                }
            }
            let torn = if lines.is_empty() {
                None
            } else {
                Some(lines[rng.gen_range(0..lines.len())])
            };
            if let Some((ls, ll)) = torn {
                let keep = rng.gen_range(0..ll);
                bytes.drain(ls + keep..ls + ll);
                format!("tore line at byte {ls}: kept {keep} of {ll} bytes, tail preserved")
            } else if bytes.len() >= 2 {
                // Single-record file: splice out an interior chunk but
                // keep the tail, so it still is not a clean truncation.
                let cut = rng.gen_range(0..bytes.len() - 1);
                let len = rng.gen_range(1..=bytes.len() - 1 - cut);
                bytes.drain(cut..cut + len);
                format!("spliced out {len} bytes at {cut}, tail preserved")
            } else {
                bytes.clear();
                "tore the only byte".into()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_always_changes_the_bytes() {
        let original: Vec<u8> = (0u8..=255).collect();
        for mode in FAULT_MODES {
            for seed in 0..100 {
                let mut bytes = original.clone();
                let what = corrupt(&mut bytes, *mode, seed);
                assert_ne!(bytes, original, "{mode} seed {seed}: {what}");
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let original = b"deterministic fault injection".to_vec();
        for mode in FAULT_MODES {
            let mut x = original.clone();
            let mut y = original.clone();
            let dx = corrupt(&mut x, *mode, 42);
            let dy = corrupt(&mut y, *mode, 42);
            assert_eq!(x, y);
            assert_eq!(dx, dy);
        }
    }

    #[test]
    fn multiflip_changes_even_one_byte_files() {
        // Repeated flips on the same bit would cancel; the distinct-spot
        // discipline means even a 1-byte file always ends up different.
        let original = b"x".to_vec();
        for seed in 0..200 {
            let mut b = original.clone();
            let what = corrupt(&mut b, FaultMode::MultiFlip, seed);
            assert_ne!(b, original, "seed {seed}: {what}");
        }
    }

    #[test]
    fn empty_input_still_changes() {
        let mut b = Vec::new();
        corrupt(&mut b, FaultMode::Truncate, 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn torn_record_keeps_the_tail() {
        // Three journal-shaped lines: the tear must land inside line 1
        // or 2 and line 3 (and the final newline) must survive, so the
        // damage is mid-file — not a truncated tail.
        let original = b"{\"seq\":1}\n{\"seq\":2}\n{\"seq\":3}\n".to_vec();
        for seed in 0..100 {
            let mut b = original.clone();
            let what = corrupt(&mut b, FaultMode::TornRecord, seed);
            assert_ne!(b, original, "seed {seed}: {what}");
            assert!(b.len() < original.len(), "a tear removes bytes");
            assert!(
                b.ends_with(b"{\"seq\":3}\n"),
                "seed {seed}: the final record survives the tear ({what})"
            );
        }
    }

    #[test]
    fn torn_record_on_single_line_still_changes_and_keeps_tail() {
        let original = b"one single record without newline".to_vec();
        for seed in 0..50 {
            let mut b = original.clone();
            let what = corrupt(&mut b, FaultMode::TornRecord, seed);
            assert_ne!(b, original, "seed {seed}: {what}");
            assert_eq!(b.last(), original.last(), "tail byte kept: {what}");
        }
    }

    #[test]
    fn torn_record_inside_a_real_journal_reads_as_corruption() {
        // The semantic contract behind the mode: a journal reader
        // forgives a damaged *final* line (crash mid-write,
        // `truncated_tail`), but a tear that leaves intact records
        // after it is mid-file damage and must surface as
        // `JournalError::Corrupt` — never as a benign tail.
        let mut path = std::env::temp_dir();
        path.push(format!("chaos-torn-journal-{}.jsonl", std::process::id()));
        let mut w = obs::journal::JournalWriter::create(&path).unwrap();
        for i in 0..4u64 {
            let body = obs::json::Value::Object(vec![("round".into(), obs::json::Value::U64(i))]);
            w.write(&body).unwrap();
        }
        w.sync().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        assert!(
            obs::journal::read_journal(&pristine[..])
                .unwrap()
                .records
                .len()
                == 4
        );
        let mut corrupt_seen = 0u32;
        for seed in 0..50 {
            let mut bytes = pristine.clone();
            let what = corrupt(&mut bytes, FaultMode::TornRecord, seed);
            match obs::journal::read_journal(&bytes[..]) {
                Err(obs::journal::JournalError::Corrupt { line, .. }) => {
                    assert!(line >= 1, "corrupt line is 1-based: {what}");
                    corrupt_seen += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected error {e} ({what})"),
                Ok(c) => panic!(
                    "seed {seed}: torn record accepted ({} records, \
                     truncated_tail={}) after `{what}`",
                    c.records.len(),
                    c.truncated_tail
                ),
            }
        }
        assert_eq!(corrupt_seen, 50, "every tear is mid-file corruption");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in FAULT_MODES {
            assert_eq!(FaultMode::parse(mode.label()), Some(*mode));
        }
        assert_eq!(FaultMode::parse("warp"), None);
    }
}
