//! Adversarial durability harness: crash- and fault-injected
//! workload/checker pairs.
//!
//! The engine's claims — byte-deterministic verdicts, resumable
//! journaled runs, artifact bundles an independent checker can audit —
//! are only worth what survives adversity. This crate attacks them on
//! three axes:
//!
//! - [`workload`]: long randomized op streams (generate → prove → emit
//!   → mutate → re-prove → cross-check against exhaustive ground
//!   truth), every op a pure function of the master seed;
//! - crash injection: [`cec::CrashPoint`]s threaded through
//!   [`bundle::prove_and_emit`], which interrupt a run at any engine
//!   phase and must resume to a byte-identical verdict and proof;
//! - [`fault`]: seeded bit flips and truncations over every persisted
//!   artifact class, which [`bundle::check_bundle`] must reject with a
//!   stable diagnostic code — never accept, never panic.
//!
//! The `rchaos` binary (in `crates/cli`) drives all three from the
//! command line; `tests/fault_matrix.rs` and `tests/chaos_stress.rs`
//! run the acceptance matrices.

#![warn(missing_docs)]

pub mod bundle;
pub mod fault;
pub mod workload;

pub use bundle::{check_bundle, prove_and_emit, BundlePaths, EmitError, ARTIFACTS, MANIFEST};
pub use fault::{corrupt, FaultMode, FAULT_MODES};
pub use workload::{generate_pair, run_workload, WorkloadOptions, WorkloadReport, PAIR_NAMES};
