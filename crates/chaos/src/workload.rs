//! Randomized long-horizon workload driver.
//!
//! One *op* is the full durability loop: generate an equivalent circuit
//! pair → prove it with a journaled engine run → emit and check the
//! bundle → mutate one circuit → re-prove → check that the verdict
//! matches exhaustive ground truth and that the mutant's bundle checks
//! clean too. Everything is a pure function of the workload seed, so a
//! failing op replays exactly; `crash_every` additionally interrupts
//! every n-th op at a random phase and resumes it, folding the
//! crash-recovery path into the same stream.

use crate::bundle::{check_bundle, prove_and_emit, EmitError};
use aig::{gen, Aig};
use cec::{CecError, CecOptions, CecOutcome, CrashMode, CrashPoint};
use lint::LintOptions;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::Path;

/// Circuit-pair families the generator draws from. Each name yields two
/// structurally different implementations of the same function.
pub const PAIR_NAMES: &[&str] = &[
    "adder",
    "parity",
    "popcount",
    "comparator",
    "decoder",
    "shifter",
    "priority",
];

/// Largest input count the ground-truth oracle will exhaustively sweep.
const ORACLE_MAX_INPUTS: u32 = 14;

/// Builds the named equivalent pair at (a family-clamped) `width`.
/// Returns `None` for unknown names.
#[must_use]
pub fn generate_pair(name: &str, width: usize) -> Option<(Aig, Aig)> {
    let w = |lo: usize, hi: usize| width.clamp(lo, hi);
    Some(match name {
        "adder" => {
            let w = w(2, 6);
            (gen::ripple_carry_adder(w), gen::kogge_stone_adder(w))
        }
        "parity" => {
            let w = w(2, 12);
            (gen::parity_chain(w), gen::parity_tree(w))
        }
        "popcount" => {
            let w = w(2, 8);
            (gen::popcount_serial(w), gen::popcount_csa(w))
        }
        "comparator" => {
            let w = w(2, 6);
            (gen::comparator_ripple(w), gen::comparator_subtract(w))
        }
        "decoder" => {
            let w = w(2, 4);
            (gen::decoder_flat(w), gen::decoder_split(w))
        }
        "shifter" => {
            // Barrel shifters want a power-of-two width.
            let w = if width <= 4 { 4 } else { 8 };
            (gen::barrel_shifter_mux(w), gen::barrel_shifter_log(w))
        }
        "priority" => {
            let w = w(2, 10);
            (
                gen::priority_encoder_chain(w),
                gen::priority_encoder_onehot(w),
            )
        }
        _ => return None,
    })
}

/// Knobs for [`run_workload`].
#[derive(Clone, Debug)]
pub struct WorkloadOptions {
    /// Master seed; every op derives its own generator/mutation seeds
    /// from it.
    pub seed: u64,
    /// Number of ops to execute.
    pub ops: usize,
    /// Engine thread count (1 = sequential sweep).
    pub threads: usize,
    /// Interrupt every n-th op (1-based) with an injected crash at a
    /// random phase, then resume it. `0` disables crash injection.
    pub crash_every: usize,
    /// Keep every op's bundle directories on disk. By default only
    /// failing ops are kept (for post-mortem).
    pub keep: bool,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            seed: 1,
            ops: 10,
            threads: 1,
            crash_every: 0,
            keep: false,
        }
    }
}

/// The outcome of one workload run.
#[derive(Debug, Default)]
pub struct WorkloadReport {
    /// Ops executed.
    pub ops: usize,
    /// Equivalent verdicts observed (baseline runs plus no-op mutants).
    pub equivalent: usize,
    /// Inequivalent verdicts observed (effective mutants).
    pub inequivalent: usize,
    /// Injected crashes that fired and were resumed.
    pub crashes: usize,
    /// Human-readable failure accounts, empty on success.
    pub failures: Vec<String>,
}

impl WorkloadReport {
    /// True when every op survived every check.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One proved-and-checked bundle, optionally via a crash + resume.
fn prove_checked(
    dir: &Path,
    a: &Aig,
    b: &Aig,
    options: &CecOptions,
    crash: Option<&CrashPoint>,
    report: &mut WorkloadReport,
    what: &str,
) -> Option<CecOutcome> {
    let outcome = match prove_and_emit(dir, a, b, options, crash.cloned(), false) {
        Ok(outcome) => {
            // The crash phase may simply not occur on this run (e.g.
            // `trim` on an inequivalent pair); completing is fine.
            outcome
        }
        Err(EmitError::Engine(CecError::CrashInjected { .. })) => {
            report.crashes += 1;
            match prove_and_emit(dir, a, b, options, None, true) {
                Ok(outcome) => outcome,
                Err(e) => {
                    report.failures.push(format!("{what}: resume failed: {e}"));
                    return None;
                }
            }
        }
        Err(e) => {
            report.failures.push(format!("{what}: prove failed: {e}"));
            return None;
        }
    };
    let lint = check_bundle(dir, &LintOptions::default());
    if !lint.is_clean() {
        report.failures.push(format!(
            "{what}: emitted bundle rejected by its own checker: {:?}",
            lint.diagnostics()
        ));
        return None;
    }
    Some(outcome)
}

/// Runs `options.ops` randomized durability ops under `dir`.
///
/// Never panics on workload failures — every violated expectation is a
/// line in [`WorkloadReport::failures`]. Bundles of clean ops are
/// removed unless [`WorkloadOptions::keep`] is set; failing ops leave
/// their directories behind.
#[must_use]
pub fn run_workload(dir: &Path, options: &WorkloadOptions) -> WorkloadReport {
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut report = WorkloadReport::default();
    for op in 0..options.ops {
        report.ops += 1;
        let failures_before = report.failures.len();
        let name = PAIR_NAMES.choose(&mut rng).expect("non-empty");
        let width = rng.gen_range(2..=8);
        let (a, b) = generate_pair(name, width).expect("registered pair");
        let what = format!("op {op} ({name}/{width})");
        let cec_options = CecOptions {
            threads: options.threads,
            seed: rng.gen(),
            ..CecOptions::default()
        };
        let crash = if options.crash_every > 0 && (op + 1) % options.crash_every == 0 {
            let phase = *cec::journal::PHASES.choose(&mut rng).expect("non-empty");
            // "round" checkpoints only exist in parallel sweeps.
            let phase = if phase == "round" && options.threads <= 1 {
                "sweep"
            } else {
                phase
            };
            Some(CrashPoint {
                phase: phase.to_string(),
                hit: 1,
                mode: CrashMode::Error,
            })
        } else {
            None
        };

        let base_dir = dir.join(format!("op{op:04}"));
        if let Some(outcome) = prove_checked(
            &base_dir,
            &a,
            &b,
            &cec_options,
            crash.as_ref(),
            &mut report,
            &what,
        ) {
            if outcome.is_equivalent() {
                report.equivalent += 1;
            } else {
                report
                    .failures
                    .push(format!("{what}: equivalent pair proved inequivalent"));
            }
        }

        // Mutate one side and re-prove; the verdict must match the
        // exhaustive oracle (mutations can be semantic no-ops).
        let mutant_dir = dir.join(format!("op{op:04}-mut"));
        if let Some(mutant) = gen::mutate(&b, rng.gen()) {
            if let Some(outcome) = prove_checked(
                &mutant_dir,
                &a,
                &mutant,
                &cec_options,
                None,
                &mut report,
                &format!("{what} mutant"),
            ) {
                if outcome.is_equivalent() {
                    report.equivalent += 1;
                } else {
                    report.inequivalent += 1;
                }
                if a.num_inputs() as u32 <= ORACLE_MAX_INPUTS {
                    let truth = aig::sim::exhaustive_diff(&a, &mutant, ORACLE_MAX_INPUTS);
                    if truth.is_none() != outcome.is_equivalent() {
                        report.failures.push(format!(
                            "{what} mutant: engine verdict {} but ground truth {}",
                            if outcome.is_equivalent() {
                                "equivalent"
                            } else {
                                "inequivalent"
                            },
                            if truth.is_none() {
                                "equivalent"
                            } else {
                                "inequivalent"
                            },
                        ));
                    }
                }
            }
        }

        if !options.keep && report.failures.len() == failures_before {
            let _ = fs::remove_dir_all(&base_dir);
            let _ = fs::remove_dir_all(&mutant_dir);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chaos-workload-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn every_pair_family_generates_an_equivalent_pair() {
        for name in PAIR_NAMES {
            for width in [2, 5, 9] {
                let (a, b) = generate_pair(name, width).expect("registered");
                assert_eq!(a.num_inputs(), b.num_inputs(), "{name}/{width}");
                assert!(a.num_inputs() as u32 <= ORACLE_MAX_INPUTS, "{name}/{width}");
                assert!(
                    aig::sim::exhaustive_diff(&a, &b, ORACLE_MAX_INPUTS).is_none(),
                    "{name}/{width} pair is not equivalent"
                );
            }
        }
        assert!(generate_pair("warp", 4).is_none());
    }

    #[test]
    fn short_workload_is_clean_and_deterministic() {
        let dir = tmp("short");
        let options = WorkloadOptions {
            seed: 7,
            ops: 3,
            crash_every: 2,
            ..WorkloadOptions::default()
        };
        let r1 = run_workload(&dir, &options);
        assert!(r1.is_clean(), "{:?}", r1.failures);
        assert_eq!(r1.ops, 3);
        assert!(r1.crashes >= 1, "crash_every=2 over 3 ops must fire");
        // Clean ops clean up after themselves.
        let leftovers = fs::read_dir(&dir).map_or(0, Iterator::count);
        assert_eq!(leftovers, 0);

        let r2 = run_workload(&dir, &options);
        assert_eq!(r1.equivalent, r2.equivalent);
        assert_eq!(r1.inequivalent, r2.inequivalent);
        assert_eq!(r1.crashes, r2.crashes);
        let _ = fs::remove_dir_all(&dir);
    }
}
