//! Durability workload tiers. The quick variant runs in the normal
//! suite (and CI); the `#[ignore]`d ones are laptop-minutes scale and
//! run with `cargo test --release -p chaos -- --ignored`.

use chaos::{run_workload, WorkloadOptions};
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chaos-stress-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn quick_threaded_workload_with_crashes_is_clean() {
    // threads = 2 puts the per-round "round" checkpoints in play, so
    // the injected crashes can land mid-sweep, not just between phases.
    let dir = tmp("quick");
    let report = run_workload(
        &dir,
        &WorkloadOptions {
            seed: 11,
            ops: 3,
            threads: 2,
            crash_every: 2,
            keep: false,
        },
    );
    assert!(report.is_clean(), "{:?}", report.failures);
    assert!(report.crashes >= 1, "no crash was injected");
    assert_eq!(report.ops, 3);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
#[ignore = "laptop-minutes: long randomized op stream with crash injection"]
fn deep_workload_survives_a_long_op_stream() {
    let dir = tmp("deep");
    let report = run_workload(
        &dir,
        &WorkloadOptions {
            seed: 1,
            ops: 40,
            threads: 2,
            crash_every: 3,
            keep: false,
        },
    );
    assert!(report.is_clean(), "{:?}", report.failures);
    assert!(report.crashes >= 5, "only {} crashes fired", report.crashes);
    assert!(report.equivalent >= 40, "every op proves a baseline pair");
    assert!(report.inequivalent > 0, "some mutants must differ");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
#[ignore = "laptop-minutes: independent seeds reproduce independent streams"]
fn deep_workload_is_deterministic_per_seed() {
    let a_dir = tmp("det-a");
    let b_dir = tmp("det-b");
    let options = WorkloadOptions {
        seed: 99,
        ops: 15,
        threads: 1,
        crash_every: 4,
        keep: false,
    };
    let first = run_workload(&a_dir, &options);
    let second = run_workload(&b_dir, &options);
    assert!(first.is_clean(), "{:?}", first.failures);
    assert_eq!(first.ops, second.ops);
    assert_eq!(first.equivalent, second.equivalent);
    assert_eq!(first.inequivalent, second.inequivalent);
    assert_eq!(first.crashes, second.crashes);
    fs::remove_dir_all(&a_dir).unwrap();
    fs::remove_dir_all(&b_dir).unwrap();
}
