//! The fault-injection acceptance matrix.
//!
//! For every persisted artifact class in a bundle — both circuit AIGER
//! files, the miter DIMACS, the TraceCheck and DRAT proofs, the
//! certificate, the run journal, and the manifest itself — this test
//! applies 100+ seeded corruptions (single bit flips, multi-bit flips,
//! truncations, torn mid-file records) and demands the paired checker
//! reject every single one
//! with a stable `XB` diagnostic code: zero panics, zero false accepts.
//!
//! The rejection guarantee is structural: the manifest fingerprints
//! every artifact, so any byte damage trips `XB010` (artifact-hash)
//! before the damaged bytes reach a parser, and damage to the manifest
//! itself trips `XB010`/`XB011` (manifest). The deeper parse/lint/cross
//! checks behind the hash gate are exercised by
//! `crates/lint/tests/bundle_adversarial.rs`.

use aig::gen;
use cec::CecOptions;
use chaos::{check_bundle, corrupt, prove_and_emit, FAULT_MODES, MANIFEST};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const SEEDS_PER_MODE: u64 = 26; // 4 modes x 26 = 104 corruptions per class

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fault-matrix-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    p
}

fn emit(dir: &Path, a: &aig::Aig, b: &aig::Aig) {
    prove_and_emit(dir, a, b, &CecOptions::default(), None, false).expect("emit");
    let clean = check_bundle(dir, &lint::LintOptions::default());
    assert!(
        clean.is_clean(),
        "pristine bundle: {:?}",
        clean.diagnostics()
    );
}

/// Runs the full matrix over one bundle directory: every artifact file
/// present on disk, every fault mode, `SEEDS_PER_MODE` seeds each.
fn assault(dir: &Path) {
    let opts = lint::LintOptions::default();
    let mut classes = 0;
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            chaos::ARTIFACTS.contains(&name.as_str()) || name == MANIFEST,
            "unexpected file {name} in bundle"
        );
        classes += 1;
        let pristine = fs::read(&path).unwrap();
        let mut rejected = 0u64;
        for &mode in FAULT_MODES {
            for seed in 0..SEEDS_PER_MODE {
                let mut bytes = pristine.clone();
                let what = corrupt(&mut bytes, mode, seed);
                assert_ne!(bytes, pristine, "{name}: {what} changed nothing");
                fs::write(&path, &bytes).unwrap();
                // The checker's contract is total: diagnostics, never
                // panics. catch_unwind turns any violation into a
                // named failure instead of a poisoned test binary.
                let report = catch_unwind(AssertUnwindSafe(|| check_bundle(dir, &opts)))
                    .unwrap_or_else(|_| panic!("{name}: checker panicked on `{what}`"));
                assert!(
                    !report.is_clean(),
                    "{name}: false accept of `{what}` (seed {seed})"
                );
                assert!(
                    report.has("XB010") || report.has("XB011"),
                    "{name}: `{what}` rejected without a stable code: {:?}",
                    report.diagnostics()
                );
                rejected += 1;
            }
        }
        fs::write(&path, &pristine).unwrap();
        assert!(
            rejected >= 100,
            "{name}: only {rejected} corruptions exercised"
        );
    }
    assert!(classes >= 5, "bundle only had {classes} artifact classes");
    let clean = check_bundle(dir, &lint::LintOptions::default());
    assert!(
        clean.is_clean(),
        "restored bundle: {:?}",
        clean.diagnostics()
    );
}

#[test]
fn every_corruption_of_an_equivalent_bundle_is_rejected() {
    let dir = tmp("equivalent");
    let a = gen::ripple_carry_adder(2);
    let b = gen::brent_kung_adder(2);
    emit(&dir, &a, &b);
    // All seven artifact classes plus the manifest are present here.
    for name in chaos::ARTIFACTS {
        assert!(dir.join(name).is_file(), "missing {name}");
    }
    assault(&dir);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_corruption_of_an_inequivalent_bundle_is_rejected() {
    let dir = tmp("inequivalent");
    let a = gen::parity_chain(5);
    // Find a mutant that really differs; an inequivalent bundle carries
    // no proof artifacts, only the SAT-side evidence.
    let b = (0..64)
        .filter_map(|seed| gen::mutate(&a, seed))
        .find(|m| aig::sim::exhaustive_diff(&a, m, 8).is_some())
        .expect("some mutant differs");
    let outcome = prove_and_emit(&dir, &a, &b, &CecOptions::default(), None, false).expect("emit");
    assert!(!outcome.is_equivalent());
    let clean = check_bundle(&dir, &lint::LintOptions::default());
    assert!(
        clean.is_clean(),
        "pristine bundle: {:?}",
        clean.diagnostics()
    );
    assault(&dir);
    fs::remove_dir_all(&dir).unwrap();
}
