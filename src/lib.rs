//! Umbrella crate for the `resolution-cec` workspace.
//!
//! Re-exports the workspace crates so the root-level examples and
//! integration tests can exercise the whole stack through one dependency:
//!
//! - [`aig`] — And-Inverter Graphs, simulation, generators, AIGER I/O
//! - [`cnf`] — CNF formulas, Tseitin encoding, DIMACS I/O
//! - [`sat`] — CDCL SAT solver with resolution-proof logging
//! - [`proof`] — resolution proof store, checkers, trimming, compaction,
//!   TraceCheck/DRAT I/O, interpolation
//! - [`bdd`] — ROBDDs, the canonical-form equivalence baseline
//! - [`cec`] — the paper's contribution: proof-producing combinational
//!   equivalence checking (plus monolithic and BDD baselines and FRAIG
//!   reduction)
//!
//! # Example
//!
//! ```
//! use resolution_cec::aig::gen;
//! use resolution_cec::cec::{CecOptions, Prover};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = gen::ripple_carry_adder(8);
//! let b = gen::carry_lookahead_adder(8);
//! let outcome = Prover::new(CecOptions::default()).prove(&a, &b)?;
//! assert!(outcome.is_equivalent());
//! # Ok(())
//! # }
//! ```

pub use aig;
pub use bdd;
pub use cec;
pub use cnf;
pub use proof;
pub use sat;
