//! Fuzz-style robustness tests for every persisted-artifact parser.
//!
//! Two attack surfaces, one contract: a parser fed hostile bytes must
//! return a parse error or a successful parse — it must never panic,
//! hang, or allocate absurdly. The first surface is fully random bytes;
//! the second is structure-aware mutation — take a byte-exact valid
//! artifact, then flip a bit, truncate it, or splice a line, which
//! lands much deeper in each grammar than noise ever does.
//!
//! `REGRESSIONS` pins inputs that broke (or nearly broke) a parser in
//! the past so the suite replays them forever, proptest or not.

use proptest::prelude::*;
use resolution_cec::aig::{aiger, gen};
use resolution_cec::cec::{miter_cnf, CecOptions, Miter, Prover};
use resolution_cec::cnf::dimacs;
use resolution_cec::proof::{export, import};

/// Past panics and pathological headers, replayed on every run.
///
/// The first three target the AIGER header paths hardened against
/// oversized node counts (`M`/`I`/`A` fields near or past `MAX_NODES`
/// and `u64::MAX`); the rest probe truncation, NUL bytes, and
/// grammar-adjacent noise in all the text formats.
const REGRESSIONS: &[&[u8]] = &[
    b"aag 18446744073709551615 1 0 1 18446744073709551614",
    b"aag 999999999999 999999999999 0 1 0\n",
    b"aig 536870911 536870911 0 0 0\n",
    b"aag 3 1 0 1 2\n2\n4\n4 2 3\n",
    b"p cnf 4294967295 4294967295\n1 -1 0",
    b"p cnf 2 1\n1 \x00 2 0\n",
    b"1 1 2 0 0\n2 -1 0 1 0\n",
    b"d 1 2 3 0\n0\n",
    b"rounds 18446744073709551615\n",
    b"{\"seq\":0,\"crc\":\"xx\",\"body\":{\"kind\":\"header\"}}\n",
    b"\xff\xfe\x00aag 1 1 0 1 0",
];

/// Feeds one byte string to every parser in the workspace. The test
/// is the absence of a panic; results are deliberately discarded.
fn feed_all_parsers(bytes: &[u8]) {
    let opts = lint::LintOptions::default();
    let _ = aiger::read(bytes);
    let _ = dimacs::read(bytes);
    let _ = import::read_tracecheck(bytes);
    let _ = lint::read_tracecheck(bytes, &opts);
    let _ = lint::lint_drat(bytes, None, &opts);
    let _ = lint::lint_journal(bytes, &opts);
    let _ = obs::journal::read_journal(bytes);
    if let Ok(text) = std::str::from_utf8(bytes) {
        let _ = lint::CertificateInfo::parse(text);
    }
}

#[test]
fn regressions_never_panic() {
    for case in REGRESSIONS {
        feed_all_parsers(case);
    }
}

/// Byte-exact valid artifacts of every class, from one real engine run.
fn valid_artifacts() -> Vec<Vec<u8>> {
    let a = gen::ripple_carry_adder(3);
    let b = gen::carry_lookahead_adder(3);
    let outcome = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("adders are equivalent");
    let proof = cert.proof.as_ref().expect("proof logging is on");

    let mut aig_bytes = Vec::new();
    aiger::write_ascii(&a, &mut aig_bytes).unwrap();
    let miter = Miter::build(&a, &b, true);
    let mut cnf_bytes = Vec::new();
    dimacs::write(&miter_cnf(&miter), &mut cnf_bytes).unwrap();
    let mut tc_bytes = Vec::new();
    export::write_tracecheck(proof, &mut tc_bytes).unwrap();
    let mut drat_bytes = Vec::new();
    export::write_drat(proof, &mut drat_bytes).unwrap();
    let mut cert_bytes = Vec::new();
    cert.info().write(&mut cert_bytes).unwrap();
    vec![aig_bytes, cnf_bytes, tc_bytes, drat_bytes, cert_bytes]
}

fn mutate(bytes: &mut Vec<u8>, op: u8, pos: usize, byte: u8) {
    if bytes.is_empty() {
        bytes.push(byte);
        return;
    }
    let pos = pos % bytes.len();
    match op % 4 {
        0 => bytes[pos] ^= 1 << (byte % 8),
        1 => bytes.truncate(pos),
        2 => bytes.insert(pos, byte),
        _ => {
            bytes.remove(pos);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Fully random bytes: noise must bounce off every parser.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        feed_all_parsers(&bytes);
    }

    /// Structure-aware: start from valid artifacts and damage them a
    /// little — the parsers must still return, not panic.
    #[test]
    fn mutated_valid_artifacts_never_panic(
        op1 in any::<u8>(),
        pos1 in any::<usize>(),
        byte1 in any::<u8>(),
        op2 in any::<u8>(),
        pos2 in any::<usize>(),
        byte2 in any::<u8>(),
    ) {
        for mut artifact in valid_artifacts() {
            mutate(&mut artifact, op1, pos1, byte1);
            mutate(&mut artifact, op2, pos2, byte2);
            feed_all_parsers(&artifact);
        }
    }

    /// ASCII-biased noise reaches deeper grammar states than raw bytes
    /// (headers parse, then counts/literals go wrong).
    #[test]
    fn ascii_noise_never_panics(
        head in 0usize..5,
        body in prop::collection::vec(0u8..128, 0..256),
    ) {
        let mut bytes: Vec<u8> =
            [&b"aag "[..], &b"p cnf "[..], &b"1 "[..], &b"d "[..], &b""[..]][head].to_vec();
        bytes.extend_from_slice(&body);
        feed_all_parsers(&bytes);
    }
}
