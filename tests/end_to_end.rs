//! End-to-end integration tests spanning every crate: generators → miter
//! → sweeping engine / monolithic baseline → proof → independent checker
//! → trimming → interpolation.

use resolution_cec::aig::gen;
use resolution_cec::aig::{sim, Aig};
use resolution_cec::cec::monolithic::{prove_monolithic, MonolithicOptions};
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::cnf::tseitin;
use resolution_cec::proof;

/// Every equivalent pair in the benchmark family zoo, at small sizes.
fn equivalent_pairs() -> Vec<(&'static str, Aig, Aig)> {
    vec![
        (
            "adder rca/ksa",
            gen::ripple_carry_adder(6),
            gen::kogge_stone_adder(6),
        ),
        (
            "adder rca/bka",
            gen::ripple_carry_adder(6),
            gen::brent_kung_adder(6),
        ),
        (
            "adder rca/csel",
            gen::ripple_carry_adder(6),
            gen::carry_select_adder(6, 2),
        ),
        (
            "mult array/csa",
            gen::array_multiplier(4),
            gen::carry_save_multiplier(4),
        ),
        (
            "alu ripple/ks",
            gen::alu(4, gen::AluArch::Ripple),
            gen::alu(4, gen::AluArch::KoggeStone),
        ),
        (
            "shifter log/mux",
            gen::barrel_shifter_log(8),
            gen::barrel_shifter_mux(8),
        ),
        (
            "cmp ripple/sub",
            gen::comparator_ripple(6),
            gen::comparator_subtract(6),
        ),
        (
            "parity chain/tree",
            gen::parity_chain(8),
            gen::parity_tree(8),
        ),
        (
            "adder rca/cskip",
            gen::ripple_carry_adder(6),
            gen::carry_skip_adder(6, 2),
        ),
        (
            "prio chain/onehot",
            gen::priority_encoder_chain(8),
            gen::priority_encoder_onehot(8),
        ),
        (
            "decoder flat/split",
            gen::decoder_flat(4),
            gen::decoder_split(4),
        ),
        (
            "popcount serial/csa",
            gen::popcount_serial(8),
            gen::popcount_csa(8),
        ),
    ]
}

fn verified_options() -> CecOptions {
    CecOptions {
        verify: true,
        ..CecOptions::default()
    }
}

#[test]
fn sweeping_engine_proves_the_whole_zoo() {
    for (name, a, b) in equivalent_pairs() {
        let outcome = Prover::new(verified_options())
            .prove(&a, &b)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let cert = outcome
            .certificate()
            .unwrap_or_else(|| panic!("{name}: expected equivalent"));
        let p = cert.proof.as_ref().expect("proof recorded");
        proof::check::check_refutation(p).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn monolithic_baseline_agrees_on_the_zoo() {
    let opts = MonolithicOptions {
        verify: true,
        ..MonolithicOptions::default()
    };
    for (name, a, b) in equivalent_pairs() {
        let outcome = prove_monolithic(&a, &b, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(outcome.is_equivalent(), "{name}");
        let p = outcome
            .certificate()
            .unwrap()
            .proof
            .as_ref()
            .unwrap()
            .clone();
        proof::check::check_refutation(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn stitched_proofs_are_smaller_than_monolithic_on_adders() {
    // The headline claim at small scale: for equivalence-rich pairs the
    // sweeping engine's (trimmed) proof is much smaller than the
    // monolithic one.
    let a = gen::ripple_carry_adder(10);
    let b = gen::kogge_stone_adder(10);
    let sweep = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
    let mono = prove_monolithic(&a, &b, &MonolithicOptions::default()).unwrap();
    let rs = sweep
        .certificate()
        .unwrap()
        .stats
        .proof
        .unwrap()
        .resolutions;
    let rm = mono.certificate().unwrap().stats.proof.unwrap().resolutions;
    assert!(
        rs * 2 < rm,
        "sweeping proof ({rs} resolutions) should be well under monolithic ({rm})"
    );
}

#[test]
fn every_engine_configuration_is_sound() {
    let a = gen::ripple_carry_adder(5);
    let b = gen::carry_select_adder(5, 2);
    for share in [false, true] {
        for structural in [false, true] {
            for sweep in [false, true] {
                let opts = CecOptions {
                    share_structure: share,
                    structural_merging: structural,
                    sweep,
                    verify: true,
                    ..CecOptions::default()
                };
                let outcome = Prover::new(opts).prove(&a, &b).unwrap_or_else(|e| {
                    panic!("share={share} structural={structural} sweep={sweep}: {e}")
                });
                let cert = outcome.certificate().unwrap_or_else(|| {
                    panic!("share={share} structural={structural} sweep={sweep}: not equivalent")
                });
                proof::check::check_refutation(cert.proof.as_ref().unwrap()).unwrap();
            }
        }
    }
}

#[test]
fn mutants_are_caught_by_both_engines() {
    let golden = gen::alu(3, gen::AluArch::Ripple);
    let mut caught_sweep = 0;
    let mut caught_mono = 0;
    let mut tried = 0;
    for seed in 0..12 {
        let Some(mutant) = gen::mutate(&golden, seed) else {
            continue;
        };
        // Ground truth by exhaustive evaluation (8 inputs).
        let truly_equal = sim::exhaustive_diff(&golden, &mutant, 8).is_none();
        tried += 1;
        let sweep = Prover::new(verified_options())
            .prove(&golden, &mutant)
            .unwrap();
        assert_eq!(sweep.is_equivalent(), truly_equal, "sweep seed {seed}");
        if !sweep.is_equivalent() {
            caught_sweep += 1;
        }
        let mono = prove_monolithic(
            &golden,
            &mutant,
            &MonolithicOptions {
                verify: true,
                ..MonolithicOptions::default()
            },
        )
        .unwrap();
        assert_eq!(mono.is_equivalent(), truly_equal, "mono seed {seed}");
        if !mono.is_equivalent() {
            caught_mono += 1;
        }
    }
    assert!(tried > 0);
    assert_eq!(caught_sweep, caught_mono);
    assert!(caught_sweep > 0, "no observable faults in {tried} mutants");
}

#[test]
fn aiger_round_trip_preserves_equivalence_verdicts() {
    // Write a circuit out in both AIGER formats, read it back, and let
    // the engine prove round-tripped == original.
    use resolution_cec::aig::aiger;
    let original = gen::alu(4, gen::AluArch::BrentKung);
    for binary in [false, true] {
        let mut buf = Vec::new();
        if binary {
            aiger::write_binary(&original, &mut buf).unwrap();
        } else {
            aiger::write_ascii(&original, &mut buf).unwrap();
        }
        let reread = aiger::read(&buf[..]).unwrap();
        let outcome = Prover::new(verified_options())
            .prove(&original, &reread)
            .unwrap();
        assert!(outcome.is_equivalent(), "binary={binary}");
    }
}

#[test]
fn rewritten_circuits_prove_equivalent_with_structural_merges() {
    // shuffle_rebuild only re-associates AND trees, so the sweep should
    // discharge a large share of the work structurally.
    let a = gen::random_aig(10, 120, 4, 7);
    let b = a.shuffle_rebuild(99);
    let outcome = Prover::new(verified_options()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("rewrite preserves function");
    proof::check::check_refutation(cert.proof.as_ref().unwrap()).unwrap();
}

fn tracecheck_bytes(p: &proof::Proof) -> Vec<u8> {
    let mut buf = Vec::new();
    proof::export::write_tracecheck(p, &mut buf).unwrap();
    buf
}

#[test]
fn parallel_sweep_agrees_with_sequential_on_the_zoo() {
    // Cross-mode equivalence: for every pair in the zoo, the sequential
    // engine and the parallel engine at 2 and 4 workers return the same
    // verdict, and every recorded proof passes both independent
    // checkers (strict chain replay and RUP).
    for (name, a, b) in equivalent_pairs() {
        let sequential = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
        assert!(sequential.is_equivalent(), "{name}: sequential");
        for threads in [2usize, 4] {
            let opts = CecOptions {
                threads,
                ..CecOptions::default()
            };
            let outcome = Prover::new(opts)
                .prove(&a, &b)
                .unwrap_or_else(|e| panic!("{name} threads={threads}: {e}"));
            assert_eq!(
                outcome.is_equivalent(),
                sequential.is_equivalent(),
                "{name} threads={threads}: verdict diverges from sequential"
            );
            let cert = outcome.certificate().unwrap();
            let p = cert.proof.as_ref().expect("proof recorded");
            proof::check::check_refutation(p)
                .unwrap_or_else(|e| panic!("{name} threads={threads}: strict: {e}"));
            proof::check::check_rup(p)
                .unwrap_or_else(|e| panic!("{name} threads={threads}: rup: {e}"));
        }
    }
}

#[test]
fn parallel_sweep_is_reproducible_across_runs() {
    // Determinism: two same-seed 4-worker runs over the whole zoo
    // produce byte-identical trimmed proofs.
    for (name, a, b) in equivalent_pairs() {
        let opts = CecOptions {
            threads: 4,
            ..CecOptions::default()
        };
        let trimmed: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let outcome = Prover::new(opts.clone()).prove(&a, &b).unwrap();
                let cert = outcome.certificate().unwrap_or_else(|| panic!("{name}"));
                let trim = proof::trim_refutation(cert.proof.as_ref().unwrap());
                tracecheck_bytes(&trim.proof)
            })
            .collect();
        assert_eq!(
            trimmed[0], trimmed[1],
            "{name}: same-seed parallel runs must emit identical trimmed proofs"
        );
    }
}

#[test]
fn tracecheck_round_trip_preserves_checkability() {
    // Golden round-trip: a stitched parallel proof survives TraceCheck
    // export → import with every step intact and still passes both
    // independent checkers.
    let a = gen::ripple_carry_adder(6);
    let b = gen::carry_select_adder(6, 2);
    let opts = CecOptions {
        threads: 2,
        ..CecOptions::default()
    };
    let outcome = Prover::new(opts).prove(&a, &b).unwrap();
    let cert = outcome.certificate().unwrap();
    let original = cert.proof.as_ref().unwrap();

    let bytes = tracecheck_bytes(original);
    let reread = proof::import::read_tracecheck(&bytes[..]).expect("exported proof parses");
    assert_eq!(reread.len(), original.len());
    assert_eq!(reread.num_original(), original.num_original());
    proof::check::check_refutation(&reread).unwrap();
    proof::check::check_rup(&reread).unwrap();
    // A second export of the imported proof is byte-identical.
    assert_eq!(tracecheck_bytes(&reread), bytes);
}

#[test]
fn unsat_core_identifies_needed_lemmas() {
    let a = gen::ripple_carry_adder(6);
    let b = gen::brent_kung_adder(6);
    let outcome = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().unwrap();
    let p = cert.proof.as_ref().unwrap();
    let trimmed = proof::trim_refutation(p);
    // The trimmed proof keeps only what the refutation needs...
    assert!(trimmed.proof.len() < p.len());
    // ...and its original clauses are a subset of the recorded ones.
    assert!(trimmed.proof.num_original() <= p.num_original());
    proof::check::check_refutation(&trimmed.proof).unwrap();
}

#[test]
fn sweep_proof_interpolants_are_valid() {
    use resolution_cec::cec::Miter;
    use resolution_cec::cnf::tseitin::Partition;
    use resolution_cec::sat::{SolveResult, Solver};

    let a = gen::ripple_carry_adder(4);
    let b = gen::brent_kung_adder(4);
    let opts = CecOptions {
        share_structure: false, // required for clause-side labels
        verify: true,
        ..CecOptions::default()
    };
    let outcome = Prover::new(opts).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("equivalent");
    let itp = cert
        .interpolant()
        .expect("partition present in unshared proof mode")
        .expect("proof replays");

    // A ⟹ I on every induced assignment: rebuild the same miter (the
    // construction is deterministic; solver var i is miter node i).
    let miter = Miter::build(&a, &b, false);
    for bits in 0..(1u64 << a.num_inputs()) {
        let pattern: Vec<bool> = (0..a.num_inputs()).map(|i| bits >> i & 1 == 1).collect();
        let values = miter.graph.evaluate_nodes(&pattern);
        assert!(
            itp.evaluate(&values),
            "A-side clauses hold but interpolant is false on {pattern:?}"
        );
    }

    // I ∧ B-side clauses is unsatisfiable.
    let p = cert.proof.as_ref().unwrap();
    let mut check = Solver::new();
    check.ensure_vars(miter.graph.len() as u32);
    for (id, side) in cert.partition.as_ref().unwrap() {
        if *side == Partition::B {
            check.add_clause(p.clause(*id));
        }
    }
    // Encode the interpolant over fresh variables tied to the miter vars.
    let enc = tseitin::encode_from(&itp.graph, miter.graph.len() as u32);
    check.ensure_vars(enc.cnf.num_vars());
    for clause in enc.cnf.clauses() {
        check.add_clause(clause);
    }
    for (input_lit, var) in enc.input_lits.iter().zip(&itp.inputs) {
        check.add_clause(&[!*input_lit, var.positive()]);
        check.add_clause(&[*input_lit, var.negative()]);
    }
    check.add_clause(&[enc.output_lits[0]]);
    assert_eq!(check.solve(), SolveResult::Unsat, "I ∧ B must be unsat");
}

#[test]
fn interpolants_from_miter_proofs_are_valid() {
    use resolution_cec::cnf::tseitin::{self, Partition};
    use resolution_cec::proof::interpolate;
    use resolution_cec::sat::{SolveResult, Solver};

    let a = gen::parity_chain(5);
    let b = gen::parity_tree(5);
    let miter = tseitin::encode_miter(&a, &b);
    let mut solver = Solver::with_proof();
    solver.ensure_vars(miter.cnf.num_vars());
    let mut sides = Vec::new();
    for (clause, side) in miter.cnf.clauses().iter().zip(&miter.partition) {
        if let Some(id) = solver.add_clause(clause) {
            while sides.len() <= id.as_usize() {
                sides.push(Partition::B);
            }
            sides[id.as_usize()] = *side;
        }
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let p = solver.proof().unwrap();
    let root = p.empty_clause().unwrap();
    let itp = interpolate::interpolant(p, root, |id| {
        sides.get(id.as_usize()).copied() != Some(Partition::A)
    })
    .expect("interpolation succeeds");
    // A ⟹ I on every induced assignment.
    for bits in 0..(1u64 << a.num_inputs()) {
        let pattern: Vec<bool> = (0..a.num_inputs()).map(|i| bits >> i & 1 == 1).collect();
        let mut assignment = vec![false; miter.cnf.num_vars() as usize];
        for (v, &bit) in miter.shared_inputs.iter().zip(&pattern) {
            assignment[v.as_usize()] = bit;
        }
        for (enc, g) in [(&miter.enc_a, &a), (&miter.enc_b, &b)] {
            let values = g.evaluate_nodes(&pattern);
            for (node, var) in enc.node_var.iter().enumerate() {
                assignment[var.as_usize()] = values[node];
            }
        }
        assert!(itp.evaluate(&assignment), "A ⟹ I violated");
    }
}
