//! Larger-scale stress tests. The quick variants run in the normal
//! suite; the `#[ignore]`d ones are laptop-minutes scale and run with
//! `cargo test --release --test stress -- --ignored`.

use resolution_cec::aig::gen;
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;

fn verified() -> CecOptions {
    CecOptions {
        verify: true,
        ..CecOptions::default()
    }
}

#[test]
fn adder_48bit_proof_checks() {
    let a = gen::ripple_carry_adder(48);
    let b = gen::kogge_stone_adder(48);
    let outcome = Prover::new(verified()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("equivalent");
    let p = cert.proof.as_ref().unwrap();
    proof::check::check_refutation(p).unwrap();
    let t = proof::compact_refutation(p);
    proof::check::check_refutation(&t.proof).unwrap();
}

#[test]
fn wide_alu_with_budget() {
    let a = gen::alu(24, gen::AluArch::Ripple);
    let b = gen::alu(24, gen::AluArch::BrentKung);
    let opts = CecOptions {
        pair_conflict_limit: Some(1000),
        verify: true,
        ..CecOptions::default()
    };
    let outcome = Prover::new(opts).prove(&a, &b).unwrap();
    assert!(outcome.is_equivalent());
}

#[test]
#[ignore = "minutes-scale: 64-bit adders across all architectures"]
fn adder_64bit_all_architectures() {
    let reference = gen::ripple_carry_adder(64);
    for (name, other) in [
        ("kogge-stone", gen::kogge_stone_adder(64)),
        ("brent-kung", gen::brent_kung_adder(64)),
        ("carry-select", gen::carry_select_adder(64, 8)),
        ("carry-skip", gen::carry_skip_adder(64, 8)),
    ] {
        let outcome = Prover::new(verified()).prove(&reference, &other).unwrap();
        let cert = outcome
            .certificate()
            .unwrap_or_else(|| panic!("{name}: expected equivalent"));
        proof::check::check_refutation(cert.proof.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        proof::check::check_rup(cert.proof.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("{name}: rup: {e}"));
    }
}

#[test]
#[ignore = "minutes-scale: 8-bit heterogeneous multipliers"]
fn multiplier_8bit_with_checked_proof() {
    let a = gen::array_multiplier(8);
    let b = gen::carry_save_multiplier(8);
    let outcome = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
    let cert = outcome.certificate().expect("equivalent");
    let p = cert.proof.as_ref().unwrap();
    proof::check::check_refutation(p).unwrap();
    let t = proof::trim_refutation(p);
    proof::check::check_refutation(&t.proof).unwrap();
}

#[test]
#[ignore = "minutes-scale: randomized sweep over many rewrite pairs"]
fn rewrite_campaign() {
    for seed in 0..40 {
        let g = gen::random_aig(14, 300, 6, seed);
        let h = g.shuffle_rebuild(seed.wrapping_mul(7919));
        let outcome = Prover::new(verified()).prove(&g, &h).unwrap();
        assert!(outcome.is_equivalent(), "seed {seed}");
    }
}
