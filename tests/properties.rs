//! Property-based tests over the whole stack.
//!
//! Random circuits, random rewrites, and random faults drive the
//! equivalence checker; every claimed equivalence is backed by a checked
//! resolution proof and every claimed difference by a re-executed
//! counterexample — and for small input counts, both verdicts are
//! compared against exhaustive evaluation.

use proptest::prelude::*;
use resolution_cec::aig::gen::{mutate, random_aig};
use resolution_cec::aig::sim::exhaustive_diff;
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;

fn verified() -> CecOptions {
    CecOptions {
        verify: true,
        ..CecOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Rewriting (shuffle/balance) never changes the function, and the
    /// engine can always prove it with a checkable refutation.
    #[test]
    fn rewrites_are_equivalence_preserving(
        inputs in 2usize..8,
        gates in 5usize..80,
        outputs in 1usize..4,
        seed in any::<u64>(),
        rewrite_seed in any::<u64>(),
        balance in any::<bool>(),
    ) {
        let a = random_aig(inputs, gates, outputs, seed);
        let b = if balance { a.balance() } else { a.shuffle_rebuild(rewrite_seed) };
        prop_assert_eq!(exhaustive_diff(&a, &b, 8), None);
        let outcome = Prover::new(verified()).prove(&a, &b).unwrap();
        let cert = outcome.certificate().expect("rewrite preserves function");
        prop_assert!(proof::check::check_refutation(cert.proof.as_ref().unwrap()).is_ok());
    }

    /// The engine's verdict matches exhaustive ground truth on mutants.
    #[test]
    fn engine_matches_ground_truth_on_mutants(
        inputs in 2usize..7,
        gates in 5usize..60,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let a = random_aig(inputs, gates, 2, seed);
        let Some(b) = mutate(&a, fault_seed) else {
            return Ok(());
        };
        let truth_equal = exhaustive_diff(&a, &b, 8).is_none();
        let outcome = Prover::new(verified()).prove(&a, &b).unwrap();
        prop_assert_eq!(outcome.is_equivalent(), truth_equal);
        if let Some(cex) = outcome.counterexample() {
            prop_assert_eq!(&a.evaluate(&cex.pattern), &cex.outputs_a);
            prop_assert_eq!(&b.evaluate(&cex.pattern), &cex.outputs_b);
            prop_assert_ne!(&cex.outputs_a, &cex.outputs_b);
        }
    }

    /// Engine options never change the verdict, only the work profile.
    #[test]
    fn options_do_not_change_verdicts(
        inputs in 2usize..6,
        gates in 5usize..40,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        share in any::<bool>(),
        structural in any::<bool>(),
        sim_words in 1usize..8,
    ) {
        let a = random_aig(inputs, gates, 2, seed);
        let b = match fault_seed % 3 {
            0 => a.shuffle_rebuild(fault_seed),
            _ => match mutate(&a, fault_seed) {
                Some(m) => m,
                None => return Ok(()),
            },
        };
        let truth_equal = exhaustive_diff(&a, &b, 8).is_none();
        let opts = CecOptions {
            share_structure: share,
            structural_merging: structural,
            sim_words,
            verify: true,
            ..CecOptions::default()
        };
        let outcome = Prover::new(opts).prove(&a, &b).unwrap();
        prop_assert_eq!(outcome.is_equivalent(), truth_equal);
    }

    /// Trimming any engine proof preserves checkability and the root.
    #[test]
    fn trimmed_engine_proofs_check(
        inputs in 2usize..6,
        gates in 5usize..40,
        seed in any::<u64>(),
        rewrite_seed in any::<u64>(),
    ) {
        let a = random_aig(inputs, gates, 2, seed);
        let b = a.shuffle_rebuild(rewrite_seed);
        let outcome = Prover::new(CecOptions::default()).prove(&a, &b).unwrap();
        let cert = outcome.certificate().expect("equivalent");
        let p = cert.proof.as_ref().unwrap();
        let t = proof::trim_refutation(p);
        prop_assert!(t.proof.len() <= p.len());
        prop_assert!(proof::check::check_refutation(&t.proof).is_ok());
        prop_assert!(proof::check::check_rup(&t.proof).is_ok());
    }
}
