#!/usr/bin/env bash
# Produces the machine-readable perf snapshot BENCH_<date>.json from a
# t7-style mixed-hardness workload: every (pair, engine, threads) cell
# runs `rcec --stats-json` and the per-run stats trees are folded into
# one top-level JSON document so future PRs can diff the trajectory.
#
#   scripts/bench_snapshot.sh [OUT.json]
#
# Expects release binaries (`cargo build --release -p cec-tools` and the
# `gen_pair` example). OUT defaults to BENCH_$(date -u +%F).json in the
# repo root. The workload is fixed and seedless, so two runs on the same
# host differ only in timing fields.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date -u +%F).json}"
rcec=target/release/rcec
[ -x "$rcec" ] || { echo "build first: cargo build --release -p cec-tools" >&2; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# The mixed-hardness zoo: easy tree-shaped pairs through the multiplier
# wall, the same spread the adaptive scheduler is tuned against.
pairs=(
  "adder:16"
  "bk:24"
  "parity:24"
  "popcount:12"
  "cmp:12"
  "penc:16"
  "mul:4"
)

for spec in "${pairs[@]}"; do
  family="${spec%%:*}"; width="${spec##*:}"
  cargo run --release -q -p aig --example gen_pair -- \
    "$width" "$work/$family-$width.a.aag" "$work/$family-$width.b.aag" "$family"
done

for spec in "${pairs[@]}"; do
  family="${spec%%:*}"; width="${spec##*:}"
  for engine in static adaptive; do
    for threads in 1 4; do
      "$rcec" "$work/$family-$width.a.aag" "$work/$family-$width.b.aag" \
        --engine="$engine" --threads="$threads" --quiet \
        --stats-json="$work/$family-$width.$engine.t$threads.json"
    done
  done
done

python3 - "$out" "$work" <<'EOF'
import json, os, platform, sys

out, work = sys.argv[1], sys.argv[2]
date = os.path.basename(out).removeprefix("BENCH_").removesuffix(".json")
runs = []
for name in sorted(os.listdir(work)):
    if not name.endswith(".json"):
        continue
    pair, engine, tcell = name.removesuffix(".json").rsplit(".", 2)
    stats = json.load(open(os.path.join(work, name)))
    runs.append({
        "pair": pair,
        "engine": engine,
        "threads": int(tcell.removeprefix("t")),
        "stats": stats,
    })
assert runs, "no stats produced"
doc = {
    "schema": "bench-v1",
    "date": date,
    "workload": "t7-mixed-zoo",
    "host": {
        "os": platform.system().lower(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    },
    "runs": runs,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"{out}: {len(runs)} runs")
EOF
