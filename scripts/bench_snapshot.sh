#!/usr/bin/env bash
# Produces the machine-readable perf snapshot BENCH_<date>.json from the
# t7 mixed-hardness workload: every (pair, engine, threads) cell of the
# zoo is proved in-process and folded into one bench-v2 document (a
# strict superset of the old bench-v1 shape) so future PRs can diff the
# trajectory with `rbench compare`.
#
#   scripts/bench_snapshot.sh [OUT.json]
#
# This is now a thin shim over `rbench snapshot` (crate `loadgen`),
# which replaced the old gen_pair/rcec/python pipeline: no temp files,
# no Python, and the host census comes from
# std::thread::available_parallelism instead of a sandboxed
# interpreter's os.cpu_count() (which is how a seeded snapshot came to
# claim "cpus": 1). OUT defaults to BENCH_$(date -u +%F).json in the
# repo root. The workload is fixed and seedless, so two runs on the
# same host differ only in timing fields.
set -euo pipefail

cd "$(dirname "$0")/.."
rbench=target/release/rbench
[ -x "$rbench" ] || { echo "build first: cargo build --release -p cec-tools" >&2; exit 1; }

if [ $# -ge 1 ]; then
  exec "$rbench" snapshot --out="$1"
else
  exec "$rbench" snapshot
fi
