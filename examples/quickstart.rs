//! Quickstart: prove two adder architectures equivalent and audit the
//! resolution proof with the independent checker.
//!
//! Run with: `cargo run --release --example quickstart`

use resolution_cec::aig::gen::{kogge_stone_adder, ripple_carry_adder};
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 32;
    let a = ripple_carry_adder(width);
    let b = kogge_stone_adder(width);
    println!(
        "circuit A (ripple):      {} AND gates, depth {}",
        a.num_ands(),
        a.depth()
    );
    println!(
        "circuit B (kogge-stone): {} AND gates, depth {}",
        b.num_ands(),
        b.depth()
    );

    let outcome = Prover::new(CecOptions::default()).prove(&a, &b)?;
    let cert = outcome.certificate().expect("the adders are equivalent");
    let stats = &cert.stats;
    println!("verdict: EQUIVALENT in {:?}", stats.elapsed);
    println!(
        "engine:  {} SAT calls ({} lemmas, {} structural merges, {} refinements)",
        stats.sat_calls, stats.lemmas, stats.structural_merges, stats.refinements
    );

    let p = cert.proof.as_ref().expect("proof recorded");
    println!("proof:   {}", p.stats());

    // Audit the verdict without trusting the engine.
    let t = std::time::Instant::now();
    proof::check::check_refutation(p)?;
    println!("checker: proof ACCEPTED in {:?}", t.elapsed());

    let trimmed = proof::trim_refutation(p);
    println!(
        "trim:    {} steps -> {} steps ({:.1}% kept)",
        p.len(),
        trimmed.proof.len(),
        100.0 * trimmed.proof.len() as f64 / p.len() as f64
    );
    proof::check::check_refutation(&trimmed.proof)?;
    println!("checker: trimmed proof ACCEPTED");
    Ok(())
}
