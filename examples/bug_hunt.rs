//! Bug hunt: mutation-based validation of the equivalence checker's
//! SAT (counterexample) path.
//!
//! A multiplier is mutated one gate at a time; for each mutant the CEC
//! engine either returns a counterexample — which is re-executed on both
//! circuits to confirm it really distinguishes them — or proves the
//! mutant equivalent (a *masked* fault), in which case the proof is
//! replayed by the independent checker. Either way, no verdict is taken
//! on faith.
//!
//! Run with: `cargo run --release --example bug_hunt`

use resolution_cec::aig::gen::{array_multiplier, mutate};
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = array_multiplier(5);
    println!("golden 5x5 array multiplier: {} gates", golden.num_ands());

    let prover = Prover::new(CecOptions {
        verify: true,
        ..CecOptions::default()
    });

    let mut caught = 0;
    let mut masked = 0;
    let trials = 40;
    for seed in 0..trials {
        let Some(mutant) = mutate(&golden, seed) else {
            continue;
        };
        match prover.prove(&golden, &mutant)? {
            outcome if outcome.is_equivalent() => {
                // The fault is masked: logically unobservable. Audit it.
                let cert = outcome.certificate().expect("equivalent");
                proof::check::check_refutation(cert.proof.as_ref().expect("proof"))?;
                masked += 1;
            }
            outcome => {
                let cex = outcome.counterexample().expect("inequivalent");
                // Confirm the counterexample on both circuits.
                assert_eq!(golden.evaluate(&cex.pattern), cex.outputs_a);
                assert_eq!(mutant.evaluate(&cex.pattern), cex.outputs_b);
                assert_ne!(cex.outputs_a, cex.outputs_b);
                caught += 1;
            }
        }
    }
    println!("mutants:  {trials}");
    println!("caught:   {caught} (counterexample confirmed by re-execution)");
    println!("masked:   {masked} (equivalence proof replayed by the checker)");
    assert!(caught > 0, "a gate-level fault campaign should find bugs");
    println!("bug hunt complete — every verdict was independently validated");
    Ok(())
}
