//! FRAIG optimization: the equivalence-checking engine pointed at a
//! single netlist, merging functionally equivalent internal nodes.
//!
//! A redundancy-rich design is built (a datapath computing the same
//! arithmetic twice in different architectures, as naive HLS output
//! often does), reduced with `cec::reduce`, and the optimization itself
//! is then *verified* by running the proof-producing checker on the
//! before/after pair — optimizing and signing off with the same
//! machinery.
//!
//! Run with: `cargo run --release --example fraig_optimize`

use resolution_cec::aig::gen::{brent_kung_adder, ripple_carry_adder};
use resolution_cec::aig::{Aig, Lit, Node};
use resolution_cec::cec::{reduce, CecOptions, Prover};
use resolution_cec::proof;

/// Imports `src` into `g` over `inputs` without structural hashing.
fn import_unshared(g: &mut Aig, src: &Aig, inputs: &[Lit]) -> Vec<Lit> {
    let mut map = vec![Lit::FALSE; src.len()];
    for (id, node) in src.iter() {
        match *node {
            Node::Const => {}
            Node::Input { index } => map[id.as_usize()] = inputs[index as usize],
            Node::And { a, b } => {
                let la = map[a.node().as_usize()].xor_complement(a.is_complemented());
                let lb = map[b.node().as_usize()].xor_complement(b.is_complemented());
                map[id.as_usize()] = g.and_unshared(la, lb);
            }
        }
    }
    src.outputs()
        .iter()
        .map(|o| map[o.node().as_usize()].xor_complement(o.is_complemented()))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "bloated" design: a 16-bit sum computed by two different
    // adder architectures, both sets of outputs exposed.
    let width = 16;
    let mut bloated = Aig::new();
    let inputs: Vec<Lit> = (0..2 * width).map(|_| bloated.add_input()).collect();
    for arch in [ripple_carry_adder(width), brent_kung_adder(width)] {
        for o in import_unshared(&mut bloated, &arch, &inputs) {
            bloated.add_output(o);
        }
    }
    println!(
        "bloated design: {} AND gates, {} outputs",
        bloated.num_ands(),
        bloated.num_outputs()
    );

    let t = std::time::Instant::now();
    let optimized = reduce(&bloated, &CecOptions::default());
    println!(
        "fraig reduce:   {} AND gates ({:.0}% removed) in {:?}",
        optimized.num_ands(),
        100.0 * (1.0 - optimized.num_ands() as f64 / bloated.num_ands() as f64),
        t.elapsed()
    );

    // Sign off the optimization with a checkable proof.
    let outcome = Prover::new(CecOptions {
        verify: true,
        ..CecOptions::default()
    })
    .prove(&bloated, &optimized)?;
    let cert = outcome
        .certificate()
        .expect("reduction must preserve the function");
    proof::check::check_refutation(cert.proof.as_ref().expect("proof"))?;
    println!(
        "sign-off:       optimization PROVEN equivalence-preserving ({} resolutions, checked)",
        cert.stats.proof.map_or(0, |s| s.resolutions)
    );
    Ok(())
}
