//! Craig interpolation from a CEC refutation.
//!
//! The paper's closing argument for resolution proofs is that they are
//! *useful objects*: once the miter refutation exists, McMillan's
//! construction turns it into an interpolant — a circuit over the shared
//! variables that over-approximates circuit A's behaviour and is still
//! inconsistent with the difference detector. This example extracts one
//! and validates both interpolant properties by brute force.
//!
//! Run with: `cargo run --release --example interpolant`

use resolution_cec::aig::gen::{brent_kung_adder, ripple_carry_adder};
use resolution_cec::cnf::tseitin::{self, Partition};
use resolution_cec::proof::{self, interpolate, ClauseId};
use resolution_cec::sat::{SolveResult, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = ripple_carry_adder(4);
    let b = brent_kung_adder(4);
    let miter = tseitin::encode_miter(&a, &b);
    println!(
        "miter CNF: {} vars, {} clauses ({} on the A side)",
        miter.cnf.num_vars(),
        miter.cnf.num_clauses(),
        miter
            .partition
            .iter()
            .filter(|p| **p == Partition::A)
            .count()
    );

    // Refute the miter with proof logging.
    let mut solver = Solver::with_proof();
    solver.ensure_vars(miter.cnf.num_vars());
    let mut sides = Vec::new();
    for (clause, side) in miter.cnf.clauses().iter().zip(&miter.partition) {
        if let Some(id) = solver.add_clause(clause) {
            while sides.len() <= id.as_usize() {
                sides.push(Partition::B);
            }
            sides[id.as_usize()] = *side;
        }
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let p = solver.proof().expect("proof logging on");
    let root = p.empty_clause().expect("refutation");
    println!("refutation: {}", p.stats());

    // Extract the interpolant between the A side and the B side.
    let is_b = |id: ClauseId| sides.get(id.as_usize()).copied() != Some(Partition::A);
    let itp = interpolate::interpolant(p, root, is_b)?;
    println!(
        "interpolant: {} gates over {} shared variables",
        itp.graph.num_ands(),
        itp.inputs.len()
    );

    // Validate: A ⟹ I and I ∧ B unsatisfiable, by checking every input
    // pattern of the original circuits (the miter variables are
    // functionally determined by the inputs).
    let num_inputs = a.num_inputs();
    let mut a_implies = true;
    for bits in 0..(1u64 << num_inputs) {
        let pattern: Vec<bool> = (0..num_inputs).map(|i| bits >> i & 1 == 1).collect();
        // Build the full variable assignment induced by the pattern.
        let mut assignment = vec![false; miter.cnf.num_vars() as usize];
        for (v, &bit) in miter.shared_inputs.iter().zip(&pattern) {
            assignment[v.as_usize()] = bit;
        }
        for (enc, g) in [(&miter.enc_a, &a), (&miter.enc_b, &b)] {
            let values = g.evaluate_nodes(&pattern);
            for (node, var) in enc.node_var.iter().enumerate() {
                assignment[var.as_usize()] = values[node];
            }
        }
        let iv = itp.evaluate(&assignment);
        // A's clauses hold under the induced assignment by construction,
        // so the interpolant must be true.
        if !iv {
            a_implies = false;
        }
    }
    println!(
        "A ⟹ I on all {} input patterns: {}",
        1u64 << num_inputs,
        a_implies
    );
    assert!(a_implies);

    // Cross-check with a second solver: I ∧ B must be UNSAT.
    // Encode the interpolant over the shared miter variables.
    let mut check = Solver::new();
    check.ensure_vars(miter.cnf.num_vars());
    let enc_i = tseitin::encode_from(&itp.graph, miter.cnf.num_vars());
    check.ensure_vars(enc_i.cnf.num_vars());
    for clause in enc_i.cnf.clauses() {
        check.add_clause(clause);
    }
    // Tie interpolant inputs to the proof variables they represent.
    for (input_lit, var) in enc_i.input_lits.iter().zip(&itp.inputs) {
        check.add_clause(&[!*input_lit, var.positive()]);
        check.add_clause(&[*input_lit, var.negative()]);
    }
    // Assert the interpolant output and all B-side clauses.
    check.add_clause(&[enc_i.output_lits[0]]);
    for (clause, side) in miter.cnf.clauses().iter().zip(&miter.partition) {
        if *side == Partition::B {
            check.add_clause(clause);
        }
    }
    let verdict = check.solve();
    println!("I ∧ B is {verdict:?} (expected Unsat)");
    assert_eq!(verdict, SolveResult::Unsat);

    proof::check::check_refutation(p)?;
    println!("interpolation source proof ACCEPTED by the checker");
    Ok(())
}
