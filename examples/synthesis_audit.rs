//! Synthesis audit: verify that an "optimized" netlist still implements
//! the original design, and hand the auditor a machine-checkable proof.
//!
//! This is the workflow the paper motivates: a synthesis tool restructures
//! a design (here: `balance` + randomized associativity rewriting stand in
//! for a synthesis run), and the CEC engine must not just say "equivalent"
//! but *prove* it in a format a third party can replay. The proof is also
//! exported in TraceCheck format for external checkers.
//!
//! Run with: `cargo run --release --example synthesis_audit`

use resolution_cec::aig::gen::{alu, AluArch};
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;
use std::io::Write;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "golden" design: an 8-bit ALU with a ripple arithmetic core.
    let golden = alu(8, AluArch::Ripple);

    // The "synthesized" design: a different arithmetic architecture,
    // then two structural rewrites on top.
    let synthesized = alu(8, AluArch::BrentKung).balance().shuffle_rebuild(42);

    println!(
        "golden:      {} gates, depth {}",
        golden.num_ands(),
        golden.depth()
    );
    println!(
        "synthesized: {} gates, depth {}",
        synthesized.num_ands(),
        synthesized.depth()
    );

    let options = CecOptions {
        verify: true, // engine re-checks its own proof before answering
        ..CecOptions::default()
    };
    let outcome = Prover::new(options).prove(&golden, &synthesized)?;

    let Some(cert) = outcome.certificate() else {
        let cex = outcome.counterexample().expect("inequivalent");
        eprintln!("SYNTHESIS BUG on input {:?}", cex.pattern);
        eprintln!("  golden outputs:      {:?}", cex.outputs_a);
        eprintln!("  synthesized outputs: {:?}", cex.outputs_b);
        std::process::exit(1);
    };

    let stats = &cert.stats;
    println!("verdict: EQUIVALENT in {:?}", stats.elapsed);
    println!(
        "engine:  {} candidates in {} classes, {} SAT calls, {} structural merges",
        stats.initial_candidates, stats.initial_classes, stats.sat_calls, stats.structural_merges
    );

    // Trim to the unsat core and export for an external checker.
    let p = cert.proof.as_ref().expect("proof recorded");
    let trimmed = proof::trim_refutation(p);
    println!(
        "proof:   {} steps recorded, {} needed for the refutation",
        p.len(),
        trimmed.proof.len()
    );

    let path = std::env::temp_dir().join("synthesis_audit.trace");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    proof::export::write_tracecheck(&trimmed.proof, &mut file)?;
    file.flush()?;
    println!("export:  TraceCheck proof written to {}", path.display());

    // Replay it once more, as the auditor would.
    proof::check::check_refutation(&trimmed.proof)?;
    println!("checker: trimmed proof ACCEPTED — verdict is auditable");
    Ok(())
}
