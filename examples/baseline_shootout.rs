//! Baseline shootout: the three ways to decide combinational
//! equivalence, side by side on the same pairs.
//!
//! 1. **BDD** — canonical form; fastest when it fits, no certificate,
//!    exponential cliff on multipliers.
//! 2. **Monolithic SAT** — one solver call on the miter CNF; robust,
//!    proof available, but the proof is large.
//! 3. **Sweeping + proof stitching** (the paper) — exploits similarity,
//!    and its compact proof is replayed by the independent checker.
//!
//! Run with: `cargo run --release --example baseline_shootout`

use resolution_cec::aig::gen;
use resolution_cec::cec::bdd_baseline::{prove_bdd, BddOptions, BddVerdict};
use resolution_cec::cec::monolithic::{prove_monolithic, MonolithicOptions};
use resolution_cec::cec::{CecOptions, Prover};
use resolution_cec::proof;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pairs = vec![
        (
            "32-bit adders (rca vs kogge-stone)",
            gen::ripple_carry_adder(32),
            gen::kogge_stone_adder(32),
        ),
        (
            "6-bit multipliers (array vs carry-save)",
            gen::array_multiplier(6),
            gen::carry_save_multiplier(6),
        ),
    ];

    for (name, a, b) in &pairs {
        println!("== {name} ==");

        // BDD baseline.
        let t = Instant::now();
        let verdict = prove_bdd(a, b, &BddOptions::default())?;
        match verdict {
            BddVerdict::Equivalent { nodes, .. } => println!(
                "  bdd:        EQUIVALENT in {:>10.3?}  ({nodes} nodes, no proof object)",
                t.elapsed()
            ),
            BddVerdict::Overflow(e) => println!("  bdd:        UNDECIDED ({e})"),
            BddVerdict::Inequivalent { .. } => println!("  bdd:        INEQUIVALENT?!"),
        }

        // Monolithic SAT with proof.
        let t = Instant::now();
        let mono = prove_monolithic(a, b, &MonolithicOptions::default())?;
        let cert = mono.certificate().expect("equivalent");
        let mono_proof = cert.proof.as_ref().expect("proof");
        proof::check::check_refutation(mono_proof)?;
        println!(
            "  monolithic: EQUIVALENT in {:>10.3?}  ({} resolutions, proof checked)",
            t.elapsed(),
            mono_proof.stats().resolutions
        );

        // Sweeping with stitched proof.
        let t = Instant::now();
        let sweep = Prover::new(CecOptions::default()).prove(a, b)?;
        let cert = sweep.certificate().expect("equivalent");
        let sweep_proof = cert.proof.as_ref().expect("proof");
        proof::check::check_refutation(sweep_proof)?;
        println!(
            "  sweeping:   EQUIVALENT in {:>10.3?}  ({} resolutions, proof checked, {} struct merges)",
            t.elapsed(),
            sweep_proof.stats().resolutions,
            cert.stats.structural_merges
        );
        println!();
    }
    Ok(())
}
